"""Heuristic sequence search and rigorous lower bounds for QO_H.

Complements the exhaustive optimizer (practical to ~8 relations):

* :func:`qoh_beam_search` — a polynomial-time beam search over join
  sequences, each candidate costed with the exact decomposition DP;
* :func:`qoh_trivial_lower_bound` — a sound bound valid for *every*
  plan of *every* sequence: the outermost relation must be read and
  the final result written, and the result size is order-independent;
* :func:`qoh_materialization_lower_bound` — a sound per-sequence bound
  in the spirit of Lemma 14: for every join position, either a
  pipeline boundary touches it (read + write of the adjacent
  intermediates) or it executes inside a pipeline (at least the
  inner-relation scan).
"""

from __future__ import annotations

from dataclasses import replace
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.hashjoin.instance import QOHInstance
from repro.core.results import PlanResult
from repro.hashjoin.optimizer import best_decomposition
from repro.perf.qoh import QOHEvaluator
from repro.runtime.costcache import active_cache
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import require
from repro.observability.tracer import traced


def cached_best_decomposition(
    instance: QOHInstance, sequence: Sequence[int]
) -> Optional[PlanResult]:
    """``best_decomposition`` through the active cost cache.

    The decomposition DP depends only on ``(instance, sequence)``, and
    the search layers (beam search, annealing, random sampling) revisit
    sequences constantly — so the plan is memoized keyed on the
    sequence tuple.  Without an active cache this is a plain call.
    """
    cache = active_cache()
    key = tuple(sequence)
    if cache is None:
        return best_decomposition(instance, key)
    return cache.get_or_compute(
        instance, "qoh-plan", key,
        lambda: best_decomposition(instance, key),
    )


def qoh_trivial_lower_bound(instance: QOHInstance) -> Fraction:
    """A bound every plan of every sequence satisfies.

    Every execution writes the final result (whose estimated size is
    the same for all sequences) and reads some first relation.
    """
    n = instance.num_relations
    result_size = Fraction(1)
    for relation in range(n):
        result_size *= instance.size(relation)
    for i in range(n):
        for j in range(i + 1, n):
            selectivity = instance.selectivity(i, j)
            if selectivity != 1:
                result_size *= selectivity
    smallest_first = min(instance.size(r) for r in range(n))
    return result_size + smallest_first


def qoh_materialization_lower_bound(
    instance: QOHInstance, sequence: Sequence[int]
) -> Fraction:
    """A sound per-sequence floor (no allocation reasoning needed).

    Any decomposition reads the sequence's first relation, scans every
    inner base relation at least once (``h >= b_S`` always), and
    writes the final result.
    """
    intermediates = instance.intermediate_sizes(sequence)
    inner_scans = sum(instance.size(r) for r in sequence[1:])
    return intermediates[0] + inner_scans + intermediates[-1]


@traced("optimize.qoh_beam")
def qoh_beam_search(
    instance: QOHInstance,
    beam_width: int = 8,
    rng: RngLike = None,
) -> Optional[PlanResult]:
    """Polynomial-time beam search over join sequences.

    Grows prefixes left to right, keeping the ``beam_width`` prefixes
    with the smallest current intermediate size (the quantity that
    drives every downstream cost in this model), breaking ties
    randomly; finishes each survivor with the exact decomposition DP.

    Prefix sizes come from the compiled kernel's set-keyed memo
    (:class:`~repro.perf.qoh.QOHEvaluator`): siblings extending the
    same parent share the parent's product, so each extension costs one
    mask lookup or one multiplication chain instead of a prefix scan —
    with identical ``Fraction`` values, so the beam (and the rng
    tie-break consumption) is unchanged.
    """
    require(beam_width >= 1, "beam width must be positive")
    n = instance.num_relations
    generator = make_rng(rng)
    evaluator = QOHEvaluator(instance)
    feasible_mask = evaluator.kernel.feasible_mask
    full_mask = evaluator.kernel.full_mask

    # Feasible heads: relations whose removal leaves all others hashable.
    def feasible_head(first: int) -> bool:
        return feasible_mask | (1 << first) == full_mask

    beams: List[Tuple[Fraction, Tuple[int, ...], int]] = [
        (evaluator.mask_size(1 << first), (first,), 1 << first)
        for first in range(n)
        if feasible_head(first)
    ]
    if not beams:
        return None
    explored = len(beams)
    beams.sort(key=lambda item: (item[0], generator.random()))
    beams = beams[:beam_width]

    for _ in range(n - 1):
        extended: List[Tuple[Fraction, Tuple[int, ...], int]] = []
        for _size, prefix, mask in beams:
            for candidate in range(n):
                if mask >> candidate & 1:
                    continue
                new_mask, new_size = evaluator.extend(mask, candidate)
                extended.append((new_size, prefix + (candidate,), new_mask))
        explored += len(extended)
        extended.sort(key=lambda item: (item[0], generator.random()))
        beams = extended[:beam_width]

    best: Optional[PlanResult] = None
    for _, sequence, _mask in beams:
        plan = evaluator.best_plan(sequence)
        if plan is not None and (best is None or plan.cost < best.cost):
            best = plan
    if best is None:
        return None
    # explored counts every partial sequence the beam examined, not
    # just the winning decomposition DP's transitions.
    return replace(best, optimizer="qoh-beam", explored=explored)
