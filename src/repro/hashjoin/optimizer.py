"""QO_H plan search.

Two layers:

* :func:`best_decomposition` — for a *fixed* sequence, the optimal
  pipeline decomposition by dynamic programming over breakpoints
  (``O(n^2)`` fragments, each costed via the allocation LP);
* :func:`qoh_optimal` / :func:`qoh_greedy` — search over sequences
  (exhaustive with feasibility pruning for small n; greedy otherwise).

Feasibility: a sequence is executable only if every non-first relation
can receive its ``hjmin`` floor within ``M`` — this is the mechanism
the f_H reduction uses to pin ``R_0`` to the first position.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from fractions import Fraction
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.results import PlanResult
from repro.hashjoin.instance import QOHInstance
from repro.hashjoin.pipeline import (
    Pipeline,
    PipelineDecomposition,
    pipeline_cost,
)
from repro.utils.validation import require
from repro.observability.tracer import traced


def is_feasible_sequence(instance: QOHInstance, sequence: Sequence[int]) -> bool:
    """True if every inner relation's hjmin floor fits in memory."""
    return all(
        instance.hjmin(relation) <= instance.memory
        for relation in sequence[1:]
    )


def feasible_sequences(instance: QOHInstance) -> Iterator[Tuple[int, ...]]:
    """All feasible permutations (use only for small instances)."""
    n = instance.num_relations
    # Relations too large to ever be an inner must come first; there can
    # be at most one such relation or no sequence is feasible.
    oversized = [
        r for r in range(n) if instance.hjmin(r) > instance.memory
    ]
    if len(oversized) > 1:
        return
    if oversized:
        first = oversized[0]
        rest = [r for r in range(n) if r != first]
        for tail in itertools.permutations(rest):
            yield (first, *tail)
    else:
        for sequence in itertools.permutations(range(n)):
            yield sequence


def best_decomposition(
    instance: QOHInstance, sequence: Sequence[int]
) -> Optional[PlanResult]:
    """Optimal pipeline decomposition for a fixed sequence (DP).

    ``dp[k]`` = least cost to execute joins ``1..k``; transitions try
    every fragment ``P(i, k)``.  Returns None for infeasible sequences.
    """
    n = instance.num_relations
    require(n >= 2, "need at least two relations to join")
    if not is_feasible_sequence(instance, sequence):
        return None
    num_joins = n - 1
    intermediates = instance.intermediate_sizes(sequence)

    # Fragment costs, memoized: fragment_cost[i][k]
    fragment_cost: dict[Tuple[int, int], Optional[Fraction]] = {}
    for i in range(1, num_joins + 1):
        for k in range(i, num_joins + 1):
            fragment_cost[(i, k)] = pipeline_cost(
                instance, sequence, Pipeline(i, k), intermediates
            )

    dp: List[Optional[Fraction]] = [None] * (num_joins + 1)
    choice: List[int] = [0] * (num_joins + 1)
    dp[0] = Fraction(0)
    explored = 0
    for k in range(1, num_joins + 1):
        for i in range(1, k + 1):
            if dp[i - 1] is None:
                continue
            cost = fragment_cost[(i, k)]
            explored += 1
            if cost is None:
                continue
            candidate = dp[i - 1] + cost
            if dp[k] is None or candidate < dp[k]:
                dp[k] = candidate
                choice[k] = i
    if dp[num_joins] is None:
        return None
    # Reconstruct the breakpoints.
    breaks: List[int] = []
    k = num_joins
    while k > 0:
        i = choice[k]
        if i > 1:
            breaks.append(i - 1)
        k = i - 1
    decomposition = PipelineDecomposition.from_breaks(num_joins, breaks)
    return PlanResult(
        cost=dp[num_joins],
        sequence=tuple(sequence),
        optimizer="qoh-dp",
        explored=explored,
        plan=decomposition,
    )


@traced("optimize.qoh_exhaustive")
def qoh_optimal(
    instance: QOHInstance, max_relations: int = 9
) -> Optional[PlanResult]:
    """Exact QO_H optimum: exhaustive sequences x decomposition DP."""
    n = instance.num_relations
    require(
        n <= max_relations,
        f"exhaustive QO_H search limited to {max_relations} relations "
        f"(instance has {n}); raise max_relations explicitly to override",
    )
    best: Optional[PlanResult] = None
    explored = 0
    for sequence in feasible_sequences(instance):
        plan = best_decomposition(instance, sequence)
        explored += 1
        if plan is None:
            continue
        if best is None or plan.cost < best.cost:
            best = replace(
                plan, optimizer="qoh-optimal", explored=explored,
                is_exact=True,
            )
    return best


@traced("optimize.qoh_greedy")
def qoh_greedy(instance: QOHInstance) -> Optional[PlanResult]:
    """Polynomial heuristic: greedy min-intermediate sequence, then DP.

    Starts from each feasible first relation, grows the sequence by
    smallest next intermediate size, and keeps the best plan.
    """
    n = instance.num_relations
    best: Optional[PlanResult] = None
    explored = 0
    for first in range(n):
        others = [r for r in range(n) if r != first]
        if any(instance.hjmin(r) > instance.memory for r in others):
            continue
        sequence = [first]
        remaining = set(others)
        current = Fraction(instance.size(first))
        while remaining:
            def resulting_size(candidate: int) -> Fraction:
                size = current * instance.size(candidate)
                for earlier in sequence:
                    selectivity = instance.selectivity(earlier, candidate)
                    if selectivity != 1:
                        size = size * selectivity
                return size

            explored += len(remaining)
            choice = min(sorted(remaining), key=resulting_size)
            current = resulting_size(choice)
            sequence.append(choice)
            remaining.remove(choice)
        plan = best_decomposition(instance, sequence)
        if plan is not None and (best is None or plan.cost < best.cost):
            best = plan
    if best is None:
        return None
    # explored counts every partial sequence the greedy examined across
    # all starting relations, not just the winning decomposition DP.
    return replace(best, optimizer="qoh-greedy", explored=explored)


def __getattr__(name: str) -> type:
    # Deprecated ``QOHPlan`` alias kept importable (lazily, so internal
    # code cannot pick it up by accident; see lint rule RPR003).
    if name == "QOHPlan":
        from repro.core.results import deprecated_alias

        return deprecated_alias(name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
