"""QO_H substrate: pipelined hash-join execution (paper Section 2.2).

A join sequence is decomposed into contiguous *pipelines*; within a
pipeline all hash tables are built first and the outer stream is probed
through them, with the available memory ``M`` split among the joins.
A join whose inner relation does not fit its memory share pays hybrid-
hash partitioning costs proportional to outer + inner size.

Modules:

* :mod:`repro.hashjoin.cost_model` — ``h(m, b_R, b_S)`` with the
  paper's linear ``g`` and ``hjmin(b) = ceil(b ** psi)``;
* :mod:`repro.hashjoin.instance` — ``(n, Q, S, T, M)`` instances;
* :mod:`repro.hashjoin.pipeline` — pipelines, decompositions and
  their costs;
* :mod:`repro.hashjoin.allocation` — optimal memory split within a
  pipeline (Lemma 10);
* :mod:`repro.hashjoin.optimizer` — DP over decomposition breakpoints
  and sequence search.
"""

from repro.hashjoin.cost_model import HashJoinCostModel
from repro.hashjoin.instance import QOHInstance
from repro.hashjoin.pipeline import (
    Pipeline,
    PipelineDecomposition,
    decomposition_cost,
    pipeline_cost,
)
from repro.hashjoin.allocation import allocate_memory
from repro.hashjoin.annealing import qoh_simulated_annealing
from repro.hashjoin.search import (
    qoh_beam_search,
    qoh_materialization_lower_bound,
    qoh_trivial_lower_bound,
)
from repro.hashjoin.optimizer import (
    PlanResult,
    best_decomposition,
    feasible_sequences,
    is_feasible_sequence,
    qoh_greedy,
    qoh_optimal,
)


def __getattr__(name: str) -> type:
    # Deprecated alias kept importable (lazily, so internal code
    # cannot pick it up by accident; see lint rule RPR003).
    if name == "QOHPlan":
        from repro.core.results import deprecated_alias

        return deprecated_alias(name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "HashJoinCostModel",
    "QOHInstance",
    "Pipeline",
    "PipelineDecomposition",
    "decomposition_cost",
    "pipeline_cost",
    "allocate_memory",
    "PlanResult",
    "QOHPlan",
    "best_decomposition",
    "feasible_sequences",
    "is_feasible_sequence",
    "qoh_greedy",
    "qoh_optimal",
    "qoh_beam_search",
    "qoh_materialization_lower_bound",
    "qoh_trivial_lower_bound",
    "qoh_simulated_annealing",
]
