"""``repro bench`` — the pinned perf-trajectory microbenchmark suite.

Runs the kernel/incremental evaluation layer against the reference cost
path on the Theorem-9 / Theorem-15 gap families and emits a
schema-checked payload (``repro.bench/1``, by convention written to
``benchmarks/results/BENCH_*.json``).  Two kinds of measures:

* machine-dependent: wall time and evaluations per second for both
  paths (``speedup_wall``);
* deterministic: exact big-int multiplications (+ divisions) per
  neighbor evaluation, counted by wrapping every instance statistic in
  :class:`~repro.perf.instrument.CountingValue` — this is the number CI
  can assert on (``mult_reduction`` must reach 5x on the EXP-T9 grid at
  ``n >= 12``), and for QO_H the number of allocation-LP solves.

Every case also cross-checks that the two paths produce identical
results (``identical``), so the benchmark doubles as an end-to-end
differential test on the exact workloads the EXP tables use.

Payload layout::

    {
      "schema": "repro.bench/1",
      "suite": "gap-families",
      "smoke": bool,
      "seed": int,
      "cases": [
        {"family": "qon-t9", "n": int, "k_yes": int, "k_no": int,
         "alpha": int, "moves": int,
         "reference": {"wall_time_s": float, "evals_per_s": float,
                       "mults_per_eval": float},
         "kernel": {"wall_time_s": float, "evals_per_s": float,
                    "mults_per_eval": float, "rebase_mults": int},
         "mult_reduction": float, "speedup_wall": float,
         "identical": bool},
        {"family": "qoh-t15", "n": int, "alpha_log2": int, "moves": int,
         "reference": {"wall_time_s": float, "plans_per_s": float,
                       "lp_solves": int},
         "kernel": {"wall_time_s": float, "plans_per_s": float,
                    "lp_solves": int, "fragments_reused": int},
         "lp_reduction": float, "speedup_wall": float,
         "identical": bool}
      ],
      "totals": {"cases": int, "identical": bool,
                 "min_qon_mult_reduction": float,
                 "meets_mult_target": bool}
    }

A second suite, ``executor`` (:func:`run_executor_bench`, by
convention ``BENCH_executor.json``), measures sweep *dispatch*
throughput rather than kernel arithmetic: the same 200-task Theorem-9
grid with repeated instances is run serially, through the legacy
per-task pool (``chunksize=0``, full instance pickled per task), and
through the chunked registry dispatcher.  Machine-dependent numbers
are tasks/sec per mode; deterministic ones are ``ship_bytes``,
``registry_hits``, ``kernels_compiled`` and ``chunks`` from
:class:`~repro.runtime.runner.ExecutorStats`, plus a bit-identity
cross-check of every parallel mode against the serial reference.  The
headline ``speedup_vs_legacy`` must reach
:data:`EXECUTOR_SPEEDUP_TARGET` on the committed baseline.
"""

from __future__ import annotations

import json
import time
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.hashjoin.instance import QOHInstance
from repro.hashjoin.optimizer import best_decomposition
from repro.joinopt.cost import total_cost
from repro.joinopt.instance import QONInstance
from repro.perf.incremental import PrefixEvaluator, sample_moves
from repro.perf.instrument import OpCounter, counting_qon_instance
from repro.perf.qoh import QOHEvaluator
from repro.runtime.costcache import use_cache
from repro.runtime.runner import (
    SweepResult,
    SweepTask,
    auto_chunksize,
    run_sweep,
)
from repro.utils.rng import make_rng
from repro.utils.validation import ValidationError, require
from repro.workloads.gaps import qoh_gap_pair, qon_gap_pair

SCHEMA = "repro.bench/1"

#: Deterministic acceptance target: reference-path exact multiplications
#: per neighbor evaluation must shrink by at least this factor on the
#: EXP-T9 grid at n >= 12.
MULT_REDUCTION_TARGET = 5.0

#: Executor-suite acceptance target: chunked registry dispatch must
#: reach this many times the legacy per-task pool's tasks/sec on the
#: committed (non-smoke) baseline.
EXECUTOR_SPEEDUP_TARGET = 2.0

#: Default artifact location, next to the EXP tables.
DEFAULT_OUT = Path("benchmarks") / "results" / "BENCH_perf.json"

#: Default artifact location for the executor suite.
DEFAULT_EXECUTOR_OUT = Path("benchmarks") / "results" / "BENCH_executor.json"

PathLike = Union[str, Path]

# (n, moves) grids; QO_N follows the EXP-T9 parameterization
# (k_yes = n - 2, parity-matched k_no, alpha = 4, NO side), QO_H the
# EXP-T15 one (epsilon = 1/2, alpha = 4^n, NO side).
_QON_GRID: Tuple[Tuple[int, int], ...] = ((12, 200), (14, 200))
_QON_GRID_SMOKE: Tuple[Tuple[int, int], ...] = ((12, 60),)
_QOH_GRID: Tuple[Tuple[int, int], ...] = ((6, 40), (9, 40))
_QOH_GRID_SMOKE: Tuple[Tuple[int, int], ...] = ((6, 12),)


def _t9_parameters(n: int) -> Tuple[int, int]:
    k_yes = n - 2
    k_no = n // 3 + (k_yes - n // 3) % 2
    return k_yes, k_no


def _t9_no_instance(n: int) -> QONInstance:
    k_yes, k_no = _t9_parameters(n)
    pair = qon_gap_pair(n, k_yes, k_no, alpha=4)
    return pair.no_reduction.instance  # type: ignore[attr-defined, no-any-return]

def _t15_no_instance(n: int) -> QOHInstance:
    pair = qoh_gap_pair(n, Fraction(1, 2), alpha=4**n)
    return pair.no_reduction.instance  # type: ignore[attr-defined, no-any-return]

def _qon_case(n: int, move_count: int, seed: int) -> Dict[str, Any]:
    instance = _t9_no_instance(n)
    k_yes, k_no = _t9_parameters(n)
    rng = make_rng(seed)
    order = list(range(n))
    rng.shuffle(order)
    base = tuple(order)
    moves = sample_moves(n, rng, move_count)
    neighbors = [move.apply(base) for move in moves]
    evaluations = len(neighbors) + 1  # the base plus every neighbor

    with use_cache(None):
        started = time.perf_counter()
        reference_costs = [total_cost(instance, base)]
        reference_costs.extend(
            total_cost(instance, neighbor) for neighbor in neighbors
        )
        reference_wall = time.perf_counter() - started

        started = time.perf_counter()
        evaluator = PrefixEvaluator(instance)
        kernel_costs = [evaluator.rebase(base)]
        kernel_costs.extend(
            cost for _, _, cost in evaluator.evaluate_neighbors(base, moves)
        )
        kernel_wall = time.perf_counter() - started

    identical = all(
        ref == ker and type(ref) is type(ker)
        for ref, ker in zip(reference_costs, kernel_costs)
    )

    # Deterministic work measure: exact multiplications + divisions per
    # neighbor evaluation, via counting proxies (values stay equal).
    counter = OpCounter()
    wrapped = counting_qon_instance(instance, counter)
    with use_cache(None):
        for neighbor in neighbors:
            total_cost(wrapped, neighbor)
        reference_ops = counter.multiplicative

        counting_evaluator = PrefixEvaluator(wrapped)
        counter.reset()
        counting_evaluator.rebase(base)
        rebase_ops = counter.multiplicative
        counter.reset()
        for _ in counting_evaluator.evaluate_neighbors(base, moves):
            pass
        kernel_ops = counter.multiplicative

    reference_per_eval = reference_ops / len(neighbors)
    kernel_per_eval = kernel_ops / len(neighbors)
    return {
        "family": "qon-t9",
        "n": n,
        "k_yes": k_yes,
        "k_no": k_no,
        "alpha": 4,
        "moves": len(moves),
        "reference": {
            "wall_time_s": reference_wall,
            "evals_per_s": evaluations / max(reference_wall, 1e-9),
            "mults_per_eval": reference_per_eval,
        },
        "kernel": {
            "wall_time_s": kernel_wall,
            "evals_per_s": evaluations / max(kernel_wall, 1e-9),
            "mults_per_eval": kernel_per_eval,
            "rebase_mults": rebase_ops,
        },
        "mult_reduction": reference_per_eval / max(kernel_per_eval, 1e-9),
        "speedup_wall": reference_wall / max(kernel_wall, 1e-9),
        "identical": identical,
    }


def _feasible_base(instance: QOHInstance, rng: Any) -> Tuple[int, ...]:
    n = instance.num_relations
    oversized = [r for r in range(n) if instance.hjmin(r) > instance.memory]
    require(len(oversized) <= 1, "gap instance should pin at most one head")
    if oversized:
        rest = [r for r in range(n) if r != oversized[0]]
        rng.shuffle(rest)
        return (oversized[0], *rest)
    order = list(range(n))
    rng.shuffle(order)
    return tuple(order)


def _qoh_case(n: int, move_count: int, seed: int) -> Dict[str, Any]:
    instance = _t15_no_instance(n)
    # The FH reduction adds a helper relation, so sequences range over
    # the instance's own relation count, not the family parameter n.
    num_relations = instance.num_relations
    rng = make_rng(seed)
    base = _feasible_base(instance, rng)
    moves = sample_moves(num_relations, rng, move_count)
    sequences = [base] + [move.apply(base) for move in moves]

    with use_cache(None):
        started = time.perf_counter()
        reference_plans = [
            best_decomposition(instance, sequence) for sequence in sequences
        ]
        reference_wall = time.perf_counter() - started

        started = time.perf_counter()
        evaluator = QOHEvaluator(instance)
        kernel_plans = [
            evaluator.best_plan(sequence) for sequence in sequences
        ]
        kernel_wall = time.perf_counter() - started

    identical = all(
        ref == ker for ref, ker in zip(reference_plans, kernel_plans)
    )
    # The reference costs every fragment of every feasible sequence
    # through the allocation LP; the evaluator memoizes by determining
    # key, so reuse across neighbors shows up directly.
    num_joins = num_relations - 1
    feasible = sum(1 for plan in reference_plans if plan is not None)
    reference_lp = feasible * (num_joins * (num_joins + 1) // 2)
    kernel_lp = evaluator.fragments_computed
    return {
        "family": "qoh-t15",
        "n": n,
        "alpha_log2": 2 * n,
        "moves": len(moves),
        "reference": {
            "wall_time_s": reference_wall,
            "plans_per_s": len(sequences) / max(reference_wall, 1e-9),
            "lp_solves": reference_lp,
        },
        "kernel": {
            "wall_time_s": kernel_wall,
            "plans_per_s": len(sequences) / max(kernel_wall, 1e-9),
            "lp_solves": kernel_lp,
            "fragments_reused": evaluator.fragments_reused,
        },
        "lp_reduction": reference_lp / max(kernel_lp, 1),
        "speedup_wall": reference_wall / max(kernel_wall, 1e-9),
        "identical": identical,
    }


def run_bench(
    smoke: bool = False, seed: int = 0, out: Optional[PathLike] = None
) -> Dict[str, Any]:
    """Run the pinned suite; validates, optionally writes, and returns
    the ``repro.bench/1`` payload."""
    qon_grid = _QON_GRID_SMOKE if smoke else _QON_GRID
    qoh_grid = _QOH_GRID_SMOKE if smoke else _QOH_GRID
    cases: List[Dict[str, Any]] = []
    for n, move_count in qon_grid:
        cases.append(_qon_case(n, move_count, seed))
    for n, move_count in qoh_grid:
        cases.append(_qoh_case(n, move_count, seed))
    qon_reductions = [
        case["mult_reduction"] for case in cases if case["family"] == "qon-t9"
    ]
    target_reductions = [
        case["mult_reduction"]
        for case in cases
        if case["family"] == "qon-t9" and case["n"] >= 12
    ]
    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "suite": "gap-families",
        "smoke": smoke,
        "seed": seed,
        "cases": cases,
        "totals": {
            "cases": len(cases),
            "identical": all(case["identical"] for case in cases),
            "min_qon_mult_reduction": min(qon_reductions),
            "meets_mult_target": bool(target_reductions) and all(
                reduction >= MULT_REDUCTION_TARGET
                for reduction in target_reductions
            ),
        },
    }
    validate_bench(payload)
    if out is not None:
        write_bench(payload, out)
    return payload


# Four *distinct* Theorem-9 NO instances; the grid cycles through
# them, so a 200-task sweep repeats each ~50 times — the shape the
# content-addressed registry is built for.
_EXECUTOR_NS: Tuple[int, ...] = (11, 12, 13, 14)


def _executor_tasks(num_tasks: int, seed: int) -> List[SweepTask]:
    """A dispatch-bound grid: many cheap tasks over few instances.

    Each task is one-restart iterative improvement with a tiny
    neighborhood, so per-task compute is small and pool overhead
    (pickling, IPC, kernel compilation) dominates — exactly the regime
    the chunked registry dispatcher targets.  ``rng`` varies per task
    so tasks stay distinct under journal fingerprints.
    """
    instances = [
        (f"t9-n{n}", _t9_no_instance(n)) for n in _EXECUTOR_NS
    ]
    tasks: List[SweepTask] = []
    for index in range(num_tasks):
        label, instance = instances[index % len(instances)]
        tasks.append(
            SweepTask(
                optimizer="iterative",
                instance=instance,
                label=label,
                kwargs=(
                    ("max_rounds", 2),
                    ("neighborhood_samples", 4),
                    ("restarts", 1),
                    ("rng", seed + index),
                ),
            )
        )
    return tasks


def _outcomes_identical(
    reference: SweepResult, candidate: SweepResult
) -> bool:
    """Bit-identity across schedules: value, type and repr of the cost,
    plus sequence, explored and exact cache counters."""
    if len(reference) != len(candidate):
        return False
    for ref, got in zip(reference, candidate):
        if (ref.index, ref.optimizer, ref.label, ref.ok) != (
            got.index, got.optimizer, got.label, got.ok
        ):
            return False
        if ref.explored != got.explored:
            return False
        if ref.cache.to_dict() != got.cache.to_dict():
            return False
        ref_result, got_result = ref.result, got.result
        if (ref_result is None) != (got_result is None):
            return False
        if ref_result is None or got_result is None:
            continue
        if ref_result.sequence != got_result.sequence:
            return False
        if type(ref_result.cost) is not type(got_result.cost):
            return False
        if ref_result.cost != got_result.cost:
            return False
        if repr(ref_result.cost) != repr(got_result.cost):
            return False
    return True


def _executor_case(
    mode: str,
    result: SweepResult,
    reference: SweepResult,
    wall: float,
    num_tasks: int,
    workers: int,
    chunk: int,
) -> Dict[str, Any]:
    executor = result.executor
    return {
        "mode": mode,
        "workers": workers,
        "chunksize": chunk,
        "tasks": num_tasks,
        "wall_time_s": wall,
        "tasks_per_s": num_tasks / max(wall, 1e-9),
        "ship_bytes": executor.ship_bytes,
        "registry_hits": executor.registry_hits,
        "kernels_compiled": executor.kernels_compiled,
        "chunks": executor.chunks,
        "identical_to_serial": _outcomes_identical(reference, result),
    }


def run_executor_bench(
    smoke: bool = False, seed: int = 0, out: Optional[PathLike] = None
) -> Dict[str, Any]:
    """Run the executor throughput suite; validates, optionally writes,
    and returns the ``repro.bench/1`` payload (``suite: "executor"``).

    Three modes over the same grid, all with ``cache=False`` so cache
    counters are schedule-independent and every mode can be
    cross-checked bit-identically against the serial reference:

    * ``serial`` — ``workers=1``, the baseline semantics;
    * ``parallel-legacy`` — the pre-registry pool (``chunksize=0``,
      full instance pickled with every task);
    * ``parallel-chunked`` — registry + chunked dispatch (the default
      parallel path).
    """
    workers = 2 if smoke else 4
    num_tasks = 40 if smoke else 200
    tasks = _executor_tasks(num_tasks, seed)

    def timed(**kwargs: Any) -> Tuple[SweepResult, float]:
        started = time.perf_counter()
        result = run_sweep(tasks, cache=False, **kwargs)
        return result, time.perf_counter() - started

    serial_result, serial_wall = timed(workers=1)
    legacy_result, legacy_wall = timed(workers=workers, chunksize=0)
    chunked_result, chunked_wall = timed(workers=workers)

    cases = [
        _executor_case(
            "serial", serial_result, serial_result, serial_wall,
            num_tasks, 1, 0,
        ),
        _executor_case(
            "parallel-legacy", legacy_result, serial_result, legacy_wall,
            num_tasks, workers, 0,
        ),
        _executor_case(
            "parallel-chunked", chunked_result, serial_result, chunked_wall,
            num_tasks, workers, auto_chunksize(num_tasks, workers),
        ),
    ]
    serial_rate = cases[0]["tasks_per_s"]
    legacy_rate = cases[1]["tasks_per_s"]
    chunked_rate = cases[2]["tasks_per_s"]
    speedup_vs_legacy = chunked_rate / max(legacy_rate, 1e-9)
    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "suite": "executor",
        "smoke": smoke,
        "seed": seed,
        "cases": cases,
        "totals": {
            "cases": len(cases),
            "identical": all(
                case["identical_to_serial"] for case in cases
            ),
            "tasks": num_tasks,
            "workers": workers,
            "speedup_vs_legacy": speedup_vs_legacy,
            "speedup_vs_serial": chunked_rate / max(serial_rate, 1e-9),
            "ship_bytes_saved": (
                cases[1]["ship_bytes"] - cases[2]["ship_bytes"]
            ),
            "meets_speedup_target": (
                speedup_vs_legacy >= EXECUTOR_SPEEDUP_TARGET
            ),
        },
    }
    validate_bench(payload)
    if out is not None:
        write_bench(payload, out)
    return payload


_QON_REFERENCE_FIELDS = {
    "wall_time_s": (int, float),
    "evals_per_s": (int, float),
    "mults_per_eval": (int, float),
}

_QON_KERNEL_FIELDS = {
    "wall_time_s": (int, float),
    "evals_per_s": (int, float),
    "mults_per_eval": (int, float),
    "rebase_mults": int,
}

_QOH_REFERENCE_FIELDS = {
    "wall_time_s": (int, float),
    "plans_per_s": (int, float),
    "lp_solves": int,
}

_QOH_KERNEL_FIELDS = {
    "wall_time_s": (int, float),
    "plans_per_s": (int, float),
    "lp_solves": int,
    "fragments_reused": int,
}

_QON_CASE_FIELDS = {
    "n": int,
    "k_yes": int,
    "k_no": int,
    "alpha": int,
    "moves": int,
    "mult_reduction": (int, float),
    "speedup_wall": (int, float),
    "identical": bool,
}

_QOH_CASE_FIELDS = {
    "n": int,
    "alpha_log2": int,
    "moves": int,
    "lp_reduction": (int, float),
    "speedup_wall": (int, float),
    "identical": bool,
}

_TOTALS_FIELDS = {
    "cases": int,
    "identical": bool,
    "min_qon_mult_reduction": (int, float),
    "meets_mult_target": bool,
}

_EXECUTOR_MODES = ("serial", "parallel-legacy", "parallel-chunked")

_EXECUTOR_CASE_FIELDS = {
    "workers": int,
    "chunksize": int,
    "tasks": int,
    "wall_time_s": (int, float),
    "tasks_per_s": (int, float),
    "ship_bytes": int,
    "registry_hits": int,
    "kernels_compiled": int,
    "chunks": int,
    "identical_to_serial": bool,
}

_EXECUTOR_TOTALS_FIELDS = {
    "cases": int,
    "identical": bool,
    "tasks": int,
    "workers": int,
    "speedup_vs_legacy": (int, float),
    "speedup_vs_serial": (int, float),
    "ship_bytes_saved": int,
    "meets_speedup_target": bool,
}


def _check_fields(
    payload: Dict[str, Any], fields: Dict[str, Any], where: str
) -> None:
    for name, kind in fields.items():
        require(name in payload, f"{where}: missing field {name!r}")
        value = payload[name]
        # bool is an int subclass; don't let True satisfy a numeric field.
        ok = isinstance(value, kind) and not (
            kind is not bool and isinstance(value, bool)
        )
        require(
            ok, f"{where}.{name}: expected {kind}, got {type(value).__name__}"
        )


def validate_bench(payload: Dict[str, Any]) -> None:
    """Raise :class:`ValidationError` unless ``payload`` fits the schema."""
    require(isinstance(payload, dict), "bench payload must be a dict")
    require(
        payload.get("schema") == SCHEMA,
        f"bench schema must be {SCHEMA!r}, got {payload.get('schema')!r}",
    )
    for name in ("suite", "smoke", "seed", "cases", "totals"):
        require(name in payload, f"bench: missing field {name!r}")
    require(
        isinstance(payload["smoke"], bool), "bench.smoke must be a bool"
    )
    require(
        isinstance(payload["seed"], int)
        and not isinstance(payload["seed"], bool),
        "bench.seed must be an int",
    )
    require(isinstance(payload["cases"], list), "bench.cases must be a list")
    require(payload["cases"], "bench.cases must be non-empty")
    suite = payload["suite"]
    require(
        suite in ("gap-families", "executor"),
        f"bench.suite must be gap-families|executor, got {suite!r}",
    )
    if suite == "executor":
        _validate_executor_bench(payload)
        return
    for position, case in enumerate(payload["cases"]):
        where = f"bench.cases[{position}]"
        require(isinstance(case, dict), f"{where} must be a dict")
        family = case.get("family")
        if family == "qon-t9":
            _check_fields(case, _QON_CASE_FIELDS, where)
            require("reference" in case, f"{where}: missing 'reference'")
            require("kernel" in case, f"{where}: missing 'kernel'")
            _check_fields(
                case["reference"], _QON_REFERENCE_FIELDS, f"{where}.reference"
            )
            _check_fields(case["kernel"], _QON_KERNEL_FIELDS, f"{where}.kernel")
        elif family == "qoh-t15":
            _check_fields(case, _QOH_CASE_FIELDS, where)
            require("reference" in case, f"{where}: missing 'reference'")
            require("kernel" in case, f"{where}: missing 'kernel'")
            _check_fields(
                case["reference"], _QOH_REFERENCE_FIELDS, f"{where}.reference"
            )
            _check_fields(case["kernel"], _QOH_KERNEL_FIELDS, f"{where}.kernel")
        else:
            raise ValidationError(
                f"{where}.family must be qon-t9|qoh-t15, got {family!r}"
            )
    totals = payload["totals"]
    require(isinstance(totals, dict), "bench.totals must be a dict")
    _check_fields(totals, _TOTALS_FIELDS, "bench.totals")
    require(
        totals["cases"] == len(payload["cases"]),
        "bench.totals.cases must equal len(bench.cases)",
    )


def _validate_executor_bench(payload: Dict[str, Any]) -> None:
    for position, case in enumerate(payload["cases"]):
        where = f"bench.cases[{position}]"
        require(isinstance(case, dict), f"{where} must be a dict")
        mode = case.get("mode")
        require(
            mode in _EXECUTOR_MODES,
            f"{where}.mode must be one of {list(_EXECUTOR_MODES)}, "
            f"got {mode!r}",
        )
        _check_fields(case, _EXECUTOR_CASE_FIELDS, where)
        for name in (
            "ship_bytes", "registry_hits", "kernels_compiled", "chunks"
        ):
            require(case[name] >= 0, f"{where}.{name} must be >= 0")
    totals = payload["totals"]
    require(isinstance(totals, dict), "bench.totals must be a dict")
    _check_fields(totals, _EXECUTOR_TOTALS_FIELDS, "bench.totals")
    require(
        totals["cases"] == len(payload["cases"]),
        "bench.totals.cases must equal len(bench.cases)",
    )


def write_bench(payload: Dict[str, Any], path: PathLike) -> Path:
    """Validate and write the payload as pretty JSON; returns the path."""
    validate_bench(payload)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def load_bench(path: PathLike) -> Dict[str, Any]:
    """Read and validate a previously written payload."""
    payload = json.loads(Path(path).read_text())
    validate_bench(payload)
    return payload


def bench_summary_lines(payload: Dict[str, Any]) -> List[str]:
    """Human-readable per-case summary for the CLI."""
    lines: List[str] = []
    if payload.get("suite") == "executor":
        for case in payload["cases"]:
            lines.append(
                "{mode:<16} workers={workers}  {rate:>8.1f} tasks/s  "
                "ship {ship:>9} B  hits {hits:>4}  compiles {comp:>4}  "
                "chunks {chunks:>3}  identical={same}".format(
                    mode=case["mode"],
                    workers=case["workers"],
                    rate=case["tasks_per_s"],
                    ship=case["ship_bytes"],
                    hits=case["registry_hits"],
                    comp=case["kernels_compiled"],
                    chunks=case["chunks"],
                    same=case["identical_to_serial"],
                )
            )
        totals = payload["totals"]
        lines.append(
            "chunked vs legacy {legacy:.2f}x  vs serial {serial:.2f}x  "
            "ship bytes saved {saved}  "
            "target(>= {target:.0f}x): {verdict}".format(
                legacy=totals["speedup_vs_legacy"],
                serial=totals["speedup_vs_serial"],
                saved=totals["ship_bytes_saved"],
                target=EXECUTOR_SPEEDUP_TARGET,
                verdict=(
                    "met" if totals["meets_speedup_target"] else "MISSED"
                ),
            )
        )
        return lines
    for case in payload["cases"]:
        if case["family"] == "qon-t9":
            lines.append(
                "qon-t9  n={n:>2}  mults/eval {ref:>8.1f} -> {ker:>6.1f}  "
                "({red:.1f}x fewer)  wall {speed:.1f}x".format(
                    n=case["n"],
                    ref=case["reference"]["mults_per_eval"],
                    ker=case["kernel"]["mults_per_eval"],
                    red=case["mult_reduction"],
                    speed=case["speedup_wall"],
                )
            )
        else:
            lines.append(
                "qoh-t15 n={n:>2}  LP solves {ref:>6} -> {ker:>6}  "
                "({red:.1f}x fewer)  wall {speed:.1f}x".format(
                    n=case["n"],
                    ref=case["reference"]["lp_solves"],
                    ker=case["kernel"]["lp_solves"],
                    red=case["lp_reduction"],
                    speed=case["speedup_wall"],
                )
            )
    totals = payload["totals"]
    lines.append(
        "identical={identical}  min qon mult reduction {red:.1f}x  "
        "target(>= {target:.0f}x at n >= 12): {verdict}".format(
            identical=totals["identical"],
            red=totals["min_qon_mult_reduction"],
            target=MULT_REDUCTION_TARGET,
            verdict="met" if totals["meets_mult_target"] else "MISSED",
        )
    )
    return lines
