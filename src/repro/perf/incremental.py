"""Incremental (delta) evaluation of QO_N join-sequence costs.

The metaheuristics explore *neighbors*: sequences that differ from a
base by an adjacent swap or a single-relation move.  The reference path
re-walks the whole sequence — ``O(n^2)`` exact multiplications — even
though everything outside a small window is unchanged.
:class:`PrefixEvaluator` checkpoints the base sequence's prefix state
once and re-costs only what a move can touch:

* ``N[p]`` — prefix size through position ``p``;
* ``minw[p]`` — per-candidate running minimum access cost over the
  prefix (folded in prefix order with a strict ``<``, so it selects
  exactly the element the reference ``min()`` generator would);
* ``H[p]`` / ``C[p]`` / ``S[p]`` — per-join costs, their left-fold
  prefix sums (the reference summation order) and suffix sums;
* ``f[p]`` — the position's *entry factor* (size times the non-unit
  selectivities into its prefix), which lets the remove side of a move
  divide a stored ``N`` instead of re-multiplying the whole prefix.

Bit-identity contract: for exact kernels (``int``/``Fraction``) every
delta recombines the *same multiset of factors* the reference path
multiplies, so values — and ``int``-vs-``Fraction`` result types, which
the evaluator tracks explicitly through the division shortcut — are
identical to ``total_cost``.  For inexact kernels (``LogNumber``
floats, where grouping changes bits) the evaluator never takes the
algebraic shortcuts: it replays the suffix after the longest common
prefix in the exact reference operation order, which is bit-identical
by construction.  The Hypothesis differential suite in
``tests/test_perf_differential.py`` enforces both claims.

Every evaluation flows through the active
:class:`~repro.runtime.costcache.CostCache` under the same
``("qon-cost", sequence)`` key the reference ``total_cost`` uses — the
two paths share cache entries and the ``cost_evaluations`` /
``cost_evaluations_uncached`` trace counters stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import (
    TYPE_CHECKING,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.observability.tracer import count as trace_count
from repro.perf.kernels import CompiledQON, compile_qon
from repro.runtime.costcache import active_cache
from repro.utils.rng import Random
from repro.utils.validation import require

if TYPE_CHECKING:  # annotation-only (the optimizers import this module)
    from repro.joinopt.instance import QONInstance


@dataclass(frozen=True)
class AdjacentSwap:
    """Swap positions ``index`` and ``index + 1``."""

    index: int

    def apply(self, sequence: Sequence[int]) -> Tuple[int, ...]:
        i = self.index
        out = list(sequence)
        out[i], out[i + 1] = out[i + 1], out[i]
        return tuple(out)


@dataclass(frozen=True)
class Reinsert:
    """Remove the element at ``source`` and insert it at ``target``."""

    source: int
    target: int

    def apply(self, sequence: Sequence[int]) -> Tuple[int, ...]:
        out = list(sequence)
        out.insert(self.target, out.pop(self.source))
        return tuple(out)


Move = Union[AdjacentSwap, Reinsert]


def sample_moves(n: int, rng: Random, count: int) -> List[Move]:
    """Sample ``count`` neighborhood moves: adjacent swaps and moves.

    Mirrors the historical ``_neighbors`` draw pattern (one coin, then
    index draws) but redraws the insertion target while it equals the
    source — ``Reinsert(i, i)`` is the identity, and such no-ops used
    to inflate the metaheuristics' ``explored`` counts.
    """
    require(n >= 2, "need at least two relations to sample moves")
    moves: List[Move] = []
    for _ in range(count):
        # The historical one-coin draw; not cost arithmetic.
        if rng.random() < 0.5:  # repro: noqa[RPR009,ANA101]
            moves.append(AdjacentSwap(rng.randrange(n - 1)))
        else:
            source = rng.randrange(n)
            target = rng.randrange(n)
            while target == source:
                target = rng.randrange(n)
            moves.append(Reinsert(source, target))
    return moves


def _exact_divide(  # repro: boundary[exactness]
    numerator: object, divisor: object, frac_remaining: int
) -> object:
    """``numerator / divisor`` with reference-faithful result types.

    The quotient is exact by construction (the divisor's factor multiset
    is a subset of the numerator's).  ``frac_remaining`` is the number
    of ``Fraction`` factors left in the quotient's multiset: when it is
    zero the reference path would have produced a plain ``int``, so a
    unit-denominator ``Fraction`` is normalized back.
    """
    if isinstance(numerator, int) and isinstance(divisor, int):
        return numerator // divisor
    quotient = numerator / divisor
    if frac_remaining == 0 and isinstance(quotient, Fraction):
        return int(quotient)
    return quotient


class PrefixEvaluator:
    """Checkpointed, cache-integrated QO_N sequence costing.

    Usage: ``rebase(start)`` wherever the reference code evaluated a
    *new current* sequence (counted through the cache exactly like
    ``total_cost``); ``evaluate_neighbors(base, moves)`` /
    ``evaluate_move(move)`` for candidates; ``advance(move)`` when a
    candidate is accepted (pure state update — no cache traffic, just
    like the reference, which never re-evaluates an accepted neighbor).
    """

    def __init__(self, instance: Union[QONInstance, CompiledQON]) -> None:
        kernel = (
            instance
            if isinstance(instance, CompiledQON)
            else compile_qon(instance)
        )
        require(kernel.n >= 2, "need at least two relations to evaluate")
        self.kernel = kernel
        self._base: Optional[Tuple[int, ...]] = None
        n = kernel.n
        self._N: List[object] = [None] * n
        self._f: List[object] = [None] * n
        self._ffrac: List[int] = [0] * n
        self._fcount: List[int] = [0] * n
        self._H: List[object] = [None] * n
        self._C: List[object] = [None] * n
        self._S: List[object] = [None] * (n + 1)
        self._minw: List[List[object]] = [[] for _ in range(n)]
        self._mask: List[int] = [0] * n
        self._total: object = None

    # -- public API ---------------------------------------------------
    @property
    def base(self) -> Optional[Tuple[int, ...]]:
        return self._base

    @property
    def total(self) -> object:
        """Cost of the current base sequence."""
        require(self._base is not None, "no base sequence set; call rebase")
        return self._total

    def rebase(self, sequence: Sequence[int]) -> object:
        """Adopt ``sequence`` as the base; returns its (cached) cost.

        Performs one cache lookup, exactly like a ``total_cost`` call —
        use it where the reference code evaluated a new current
        sequence, so ``cost_evaluations`` metrics stay identical.
        """
        key = tuple(sequence)
        self._ensure_base(key)
        return self._cost_through_cache(key, lambda: self._total)

    def evaluate(self, sequence: Sequence[int]) -> object:
        """Cost of an arbitrary permutation (suffix replay after the LCP).

        Bit-identical for every kernel, exact or not: on a cache miss
        the suffix after the longest common prefix with the base is
        recomputed in the reference operation order.
        """
        key = tuple(sequence)
        self.kernel.check_permutation(key)
        require(self._base is not None, "no base sequence set; call rebase")
        return self._cost_through_cache(key, lambda: self._replay(key))

    def evaluate_move(self, move: Move) -> Tuple[Tuple[int, ...], object]:
        """``(neighbor, cost)`` for one move applied to the base."""
        base = self._base
        require(base is not None, "no base sequence set; call rebase")
        n = self.kernel.n
        if isinstance(move, AdjacentSwap):
            index = move.index
            require(0 <= index < n - 1, f"swap index {index} out of range")
            key = move.apply(base)
            if self.kernel.exact:
                cost = self._cost_through_cache(
                    key, lambda: self._swap_delta(index)
                )
            else:
                cost = self._cost_through_cache(
                    key, lambda: self._replay(key)
                )
            return key, cost
        source, target = move.source, move.target
        require(
            0 <= source < n and 0 <= target < n,
            f"move ({source}, {target}) out of range",
        )
        require(source != target, "no-op move: source equals target")
        key = move.apply(base)
        if self.kernel.exact:
            cost = self._cost_through_cache(
                key, lambda: self._reinsert_delta(source, target)
            )
        else:
            cost = self._cost_through_cache(key, lambda: self._replay(key))
        return key, cost

    def evaluate_neighbors(
        self, base: Sequence[int], moves: Iterable[Move]
    ) -> Iterator[Tuple[Move, Tuple[int, ...], object]]:
        """Lazily cost each move against ``base``.

        Lazy on purpose: consumers break on the first improvement, and
        only the candidates actually pulled are evaluated (and counted)
        — the ``explored`` semantics of the reference loops.  Consume
        before mutating the evaluator (``advance``/``rebase``).
        """
        self._ensure_base(tuple(base))
        for move in moves:
            key, cost = self.evaluate_move(move)
            yield move, key, cost

    def advance(self, move: Move) -> object:
        """Apply an accepted move to the base; returns the new total.

        Pure state update — no cache lookups or trace counts, matching
        the reference loops, which never re-evaluate an accepted
        candidate.  On exact kernels adjacent swaps update O(1)
        positions (plus the prefix-sum refresh); moves — and *every*
        inexact advance, whose float checkpoints must be re-folded in
        the new sequence order to stay bit-identical — rebuild the
        checkpoints.
        """
        base = self._base
        require(base is not None, "no base sequence set; call rebase")
        if isinstance(move, AdjacentSwap) and self.kernel.exact:
            self._advance_swap(move.index)
        else:
            self._recompute(move.apply(base))
        return self._total

    # -- cache integration -------------------------------------------
    def _cost_through_cache(self, key: Tuple[int, ...], compute: object) -> object:
        # Mirrors joinopt.cost.total_cost: same cache kind and key, so
        # the kernel and reference paths share entries; same counter
        # discipline, so sweep metrics stay exact.
        cache = active_cache()
        if cache is None:
            trace_count("cost_evaluations_uncached")
            return compute()  # type: ignore[operator]
        return cache.get_or_compute(
            self.kernel.instance, "qon-cost", key, compute  # type: ignore[arg-type]
        )

    # -- state construction ------------------------------------------
    def _ensure_base(self, sequence: Tuple[int, ...]) -> None:
        if sequence != self._base:
            self._recompute(sequence)

    def _recompute(self, sequence: Tuple[int, ...]) -> None:
        """Rebuild every checkpoint for ``sequence`` in reference order."""
        kernel = self.kernel
        kernel.check_permutation(sequence)
        n = kernel.n
        sizes, sel, access, adj = (
            kernel.sizes, kernel.sel, kernel.access, kernel.adj,
        )
        exact = kernel.exact
        N, f, H, C = self._N, self._f, self._H, self._C
        ffrac, fcount, minw, mask = (
            self._ffrac, self._fcount, self._minw, self._mask,
        )
        first = sequence[0]
        head = sizes[first]
        N[0] = head
        f[0] = head
        ffrac[0] = 1 if isinstance(head, Fraction) else 0
        fcount[0] = ffrac[0]
        H[0] = None
        C[0] = None
        minw[0] = list(access[first])
        mask[0] = 1 << first
        for p in range(1, n):
            vertex = sequence[p]
            row = minw[p - 1]
            H[p] = N[p - 1] * row[vertex]
            C[p] = H[p] if p == 1 else C[p - 1] + H[p]
            adjacency = adj[vertex]
            selv = sel[vertex]
            if exact:
                # Entry factor first (its multiset equals the reference
                # per-position factors), then one multiply onto N —
                # value- and type-identical for exact arithmetic.
                factor = sizes[vertex]
                frac = 1 if isinstance(factor, Fraction) else 0
                if adjacency & mask[p - 1]:
                    for q in range(p):
                        u = sequence[q]
                        if adjacency >> u & 1:
                            s = selv[u]
                            factor = factor * s
                            if isinstance(s, Fraction):
                                frac += 1
                f[p] = factor
                ffrac[p] = frac
                fcount[p] = fcount[p - 1] + frac
                N[p] = N[p - 1] * factor
            else:
                # Inexact (float-log) values: fold exactly as the
                # reference does — size first, then selectivities in
                # prefix order — so checkpoints match it bit for bit.
                current = N[p - 1] * sizes[vertex]
                if adjacency & mask[p - 1]:
                    for q in range(p):
                        u = sequence[q]
                        if adjacency >> u & 1:
                            current = current * selv[u]
                N[p] = current
            new_row = list(row)
            arow = access[vertex]
            for c in range(n):
                candidate = arow[c]
                if candidate < new_row[c]:
                    new_row[c] = candidate
            minw[p] = new_row
            mask[p] = mask[p - 1] | (1 << vertex)
        if exact:
            S = self._S
            S[n - 1] = H[n - 1]
            for p in range(n - 2, 0, -1):
                S[p] = H[p] + S[p + 1]
        self._total = C[n - 1]
        self._base = sequence

    def _set_position(self, sequence: Tuple[int, ...], p: int) -> None:
        """Recompute position ``p``'s state from the state at ``p - 1``."""
        kernel = self.kernel
        n = kernel.n
        sizes, sel, access, adj = (
            kernel.sizes, kernel.sel, kernel.access, kernel.adj,
        )
        vertex = sequence[p]
        row = self._minw[p - 1]
        self._H[p] = self._N[p - 1] * row[vertex]
        adjacency = adj[vertex]
        selv = sel[vertex]
        if kernel.exact:
            factor = sizes[vertex]
            frac = 1 if isinstance(factor, Fraction) else 0
            if adjacency & self._mask[p - 1]:
                for q in range(p):
                    u = sequence[q]
                    if adjacency >> u & 1:
                        s = selv[u]
                        factor = factor * s
                        if isinstance(s, Fraction):
                            frac += 1
            self._f[p] = factor
            self._ffrac[p] = frac
            self._fcount[p] = self._fcount[p - 1] + frac
            self._N[p] = self._N[p - 1] * factor
        else:
            current = self._N[p - 1] * sizes[vertex]
            if adjacency & self._mask[p - 1]:
                for q in range(p):
                    u = sequence[q]
                    if adjacency >> u & 1:
                        current = current * selv[u]
            self._N[p] = current
        new_row = list(row)
        arow = access[vertex]
        for c in range(n):
            candidate = arow[c]
            if candidate < new_row[c]:
                new_row[c] = candidate
        self._minw[p] = new_row
        self._mask[p] = self._mask[p - 1] | (1 << vertex)

    def _advance_swap(self, index: int) -> None:
        """In-place state update for an accepted adjacent swap."""
        kernel = self.kernel
        n = kernel.n
        assert self._base is not None
        sequence = AdjacentSwap(index).apply(self._base)
        if index == 0:
            head = kernel.sizes[sequence[0]]
            self._N[0] = head
            self._f[0] = head
            self._ffrac[0] = 1 if isinstance(head, Fraction) else 0
            self._fcount[0] = self._ffrac[0]
            self._minw[0] = list(kernel.access[sequence[0]])
            self._mask[0] = 1 << sequence[0]
            self._set_position(sequence, 1)
        else:
            self._set_position(sequence, index)
            self._set_position(sequence, index + 1)
        H, C = self._H, self._C
        for p in range(max(1, index), n):
            C[p] = H[p] if p == 1 else C[p - 1] + H[p]
        if kernel.exact:
            S = self._S
            start = min(index + 1, n - 1)
            for p in range(start, 0, -1):
                S[p] = H[p] if p == n - 1 else H[p] + S[p + 1]
        self._total = C[n - 1]
        self._base = sequence

    # -- replay (generic, bit-identical for any kernel) ---------------
    def _replay(self, sequence: Tuple[int, ...]) -> object:
        """Reference-order evaluation reusing the longest common prefix."""
        kernel = self.kernel
        n = kernel.n
        base = self._base
        assert base is not None
        lcp = 0
        while lcp < n and sequence[lcp] == base[lcp]:
            lcp += 1
        if lcp == n:
            return self._total
        sizes, sel, access, adj = (
            kernel.sizes, kernel.sel, kernel.access, kernel.adj,
        )
        if lcp == 0:
            first = sequence[0]
            current = sizes[first]
            row = list(access[first])
            total: object = None
            start = 1
        else:
            current = self._N[lcp - 1]
            row = list(self._minw[lcp - 1])
            total = self._C[lcp - 1] if lcp >= 2 else None
            start = lcp
        for p in range(start, n):
            vertex = sequence[p]
            joined = current * row[vertex]
            total = joined if total is None else total + joined
            current = current * sizes[vertex]
            adjacency = adj[vertex]
            if adjacency:
                selv = sel[vertex]
                for q in range(p):
                    u = sequence[q]
                    if adjacency >> u & 1:
                        current = current * selv[u]
            arow = access[vertex]
            for c in range(n):
                candidate = arow[c]
                if candidate < row[c]:
                    row[c] = candidate
        return total

    # -- exact deltas --------------------------------------------------
    def _swap_delta(self, index: int) -> object:
        """Cost of the adjacent-swap neighbor; O(deg) multiplications."""
        kernel = self.kernel
        n = kernel.n
        base = self._base
        assert base is not None
        a, b = base[index], base[index + 1]
        if index == 0:
            total: object = kernel.sizes[b] * kernel.access[b][a]
            after = 2
        else:
            n_prev = self._N[index - 1]
            row = self._minw[index - 1]
            joined_b = n_prev * row[b]
            factor = kernel.sizes[b]
            adjacency = kernel.adj[b]
            selb = kernel.sel[b]
            if adjacency & self._mask[index - 1]:
                for q in range(index):
                    u = base[q]
                    if adjacency >> u & 1:
                        factor = factor * selb[u]
            n_mid = n_prev * factor
            stored = row[a]
            direct = kernel.access[b][a]
            probe = direct if direct < stored else stored
            joined_a = n_mid * probe
            if index >= 2:
                total = self._C[index - 1] + joined_b + joined_a
            else:
                total = joined_b + joined_a
            after = index + 2
        if after <= n - 1:
            total = total + self._S[after]
        return total

    def _reinsert_delta(self, source: int, target: int) -> object:
        """Cost of the single-relation-move neighbor; O(window) work."""
        if target < source:
            return self._reinsert_earlier(source, target)
        return self._reinsert_later(source, target)

    def _reinsert_earlier(self, source: int, target: int) -> object:
        kernel = self.kernel
        n = kernel.n
        base = self._base
        assert base is not None
        moved = base[source]
        sizes, access = kernel.sizes, kernel.access
        selv = kernel.sel[moved]
        adjacency = kernel.adj[moved]
        total: object = self._C[target - 1] if target >= 2 else None
        if target == 0:
            gather = sizes[moved]
            n_prev: object = gather
        else:
            factor = sizes[moved]
            if adjacency & self._mask[target - 1]:
                for q in range(target):
                    u = base[q]
                    if adjacency >> u & 1:
                        factor = factor * selv[u]
            joined_v = self._N[target - 1] * self._minw[target - 1][moved]
            total = joined_v if total is None else total + joined_v
            gather = factor
            n_prev = self._N[target - 1] * gather
        for p in range(target, source):
            u = base[p]
            if p == 0:
                probe = access[moved][u]
            else:
                stored = self._minw[p - 1][u]
                direct = access[moved][u]
                probe = direct if direct < stored else stored
            joined = n_prev * probe
            total = joined if total is None else total + joined
            if adjacency >> u & 1:
                gather = gather * selv[u]
            n_prev = self._N[p] * gather
        if source + 1 <= n - 1:
            total = total + self._S[source + 1]
        return total

    def _reinsert_later(self, source: int, target: int) -> object:
        kernel = self.kernel
        n = kernel.n
        base = self._base
        assert base is not None
        moved = base[source]
        sizes, access = kernel.sizes, kernel.access
        selv = kernel.sel[moved]
        adjacency = kernel.adj[moved]
        total: object = self._C[source - 1] if source >= 2 else None
        if source == 0:
            row: Optional[List[object]] = None
            n_prev: object = None
        else:
            row = list(self._minw[source - 1])
            n_prev = self._N[source - 1]
        gather = self._f[source]
        gather_frac = self._ffrac[source]
        for p in range(source + 1, target + 1):
            u = base[p]
            if row is None:
                # u becomes the new first relation: no join yet.
                if adjacency >> u & 1:
                    s = selv[u]
                    gather = gather * s
                    if isinstance(s, Fraction):
                        gather_frac += 1
                n_prev = _exact_divide(
                    self._N[p], gather, self._fcount[p] - gather_frac
                )
                row = list(access[u])
                continue
            joined = n_prev * row[u]
            total = joined if total is None else total + joined
            if adjacency >> u & 1:
                s = selv[u]
                gather = gather * s
                if isinstance(s, Fraction):
                    gather_frac += 1
            n_prev = _exact_divide(
                self._N[p], gather, self._fcount[p] - gather_frac
            )
            arow = access[u]
            for c in range(kernel.n):
                candidate = arow[c]
                if candidate < row[c]:
                    row[c] = candidate
        assert row is not None
        joined_v = n_prev * row[moved]
        total = joined_v if total is None else total + joined_v
        if target + 1 <= n - 1:
            total = total + self._S[target + 1]
        return total
