"""Incremental QO_H plan evaluation: shared prefix/fragment state.

The QO_H search layers (beam search, annealing, exhaustive sweeps)
re-run the decomposition DP on sequences that share long prefixes, and
the reference ``best_decomposition`` recomputes every intermediate size
and every fragment cost from scratch each time.  QO_H statistics are
all ``int``/``Fraction``, and ``Fraction`` arithmetic is exact, so both
quantities are functions of *sets*, not orders of computation:

* ``N(X)`` depends only on the relation set ``X`` — memoized per
  prefix bitmask, so beam candidates extending the same parent pay one
  multiplication per extension instead of a prefix scan;
* a fragment ``P(i, k)``'s cost depends only on the set before the
  fragment and the ordered inner relations — memoized on
  ``(prefix_mask, inners)``, so neighboring sequences (and the DP's
  own transitions) share allocation-LP solves.

:class:`QOHEvaluator.best_plan` routes through the active
:class:`~repro.runtime.costcache.CostCache` under the same
``("qoh-plan", sequence)`` key as
``repro.hashjoin.search.cached_best_decomposition``, and reproduces the
reference DP loop — transition order, strict-``<`` tie-breaking,
``explored`` counting, breakpoint reconstruction — exactly, so results
are bit-identical (the differential suite enforces it).
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.results import PlanResult
from repro.perf.kernels import CompiledQOH, compile_qoh
from repro.runtime.costcache import active_cache
from repro.utils.validation import require

if TYPE_CHECKING:  # annotation-only (hashjoin's search layers import this)
    from repro.hashjoin.instance import QOHInstance

FragmentKey = Tuple[int, Tuple[int, ...]]


class QOHEvaluator:
    """Cache-integrated QO_H sequence costing with fragment reuse."""

    def __init__(self, instance: Union[QOHInstance, CompiledQOH]) -> None:
        self.kernel = (
            instance
            if isinstance(instance, CompiledQOH)
            else compile_qoh(instance)
        )
        self._sizes_by_mask: Dict[int, Fraction] = {}
        self._fragments: Dict[FragmentKey, Optional[Fraction]] = {}
        self.fragments_computed = 0
        self.fragments_reused = 0
        self.plans_evaluated = 0

    # -- prefix sizes (set-keyed) ------------------------------------
    def mask_size(self, mask: int) -> Fraction:
        """``N(X)`` for the relation set ``X`` given as a bitmask.

        ``Fraction`` products are exact, so the set-keyed value equals
        the reference prefix-order product bit for bit.
        """
        require(mask != 0, "mask must name at least one relation")
        memo = self._sizes_by_mask
        value = memo.get(mask)
        if value is not None:
            return value
        low = mask & -mask
        vertex = low.bit_length() - 1
        rest = mask ^ low
        if rest == 0:
            value = Fraction(self.kernel.sizes[vertex])
        else:
            value = self.kernel.extend_size(
                self.mask_size(rest), rest, vertex
            )
        memo[mask] = value
        return value

    def extend(self, mask: int, vertex: int) -> Tuple[int, Fraction]:
        """``(new_mask, N(X v))`` for appending ``vertex`` to set ``mask``."""
        new_mask = mask | (1 << vertex)
        return new_mask, self.mask_size(new_mask)

    # -- plans ---------------------------------------------------------
    def best_plan(self, sequence: Sequence[int]) -> Optional[PlanResult]:
        """``best_decomposition`` through the active cost cache.

        Mirrors ``cached_best_decomposition``: same cache kind and key,
        so sweep metrics and cache contents are identical whichever
        path computed an entry.
        """
        cache = active_cache()
        key = tuple(sequence)
        if cache is None:
            return self._best_plan_uncached(key)
        return cache.get_or_compute(
            self.kernel.instance, "qoh-plan", key,
            lambda: self._best_plan_uncached(key),
        )

    def _best_plan_uncached(
        self, sequence: Tuple[int, ...]
    ) -> Optional[PlanResult]:
        kernel = self.kernel
        n = kernel.n
        require(n >= 2, "need at least two relations to join")
        kernel.check_permutation(sequence)
        self.plans_evaluated += 1
        if not kernel.is_feasible(sequence):
            return None
        num_joins = n - 1
        intermediates: List[Fraction] = []
        masks: List[int] = []
        mask = 0
        for vertex in sequence:
            mask |= 1 << vertex
            masks.append(mask)
            intermediates.append(self.mask_size(mask))

        # The reference DP, with fragments costed lazily (only the
        # transitions the reference counts under ``explored`` reach a
        # fragment) and memoized across sequences.
        dp: List[Optional[Fraction]] = [None] * (num_joins + 1)
        choice: List[int] = [0] * (num_joins + 1)
        dp[0] = Fraction(0)
        explored = 0
        for k in range(1, num_joins + 1):
            for i in range(1, k + 1):
                if dp[i - 1] is None:
                    continue
                cost = self._fragment_cost(sequence, intermediates, masks, i, k)
                explored += 1
                if cost is None:
                    continue
                candidate = dp[i - 1] + cost
                if dp[k] is None or candidate < dp[k]:
                    dp[k] = candidate
                    choice[k] = i
        if dp[num_joins] is None:
            return None
        breaks: List[int] = []
        k = num_joins
        while k > 0:
            i = choice[k]
            if i > 1:
                breaks.append(i - 1)
            k = i - 1
        # Deferred import: hashjoin's search layers import this module.
        from repro.hashjoin.pipeline import PipelineDecomposition

        decomposition = PipelineDecomposition.from_breaks(num_joins, breaks)
        return PlanResult(
            cost=dp[num_joins],
            sequence=sequence,
            optimizer="qoh-dp",
            explored=explored,
            plan=decomposition,
        )

    def _fragment_cost(
        self,
        sequence: Tuple[int, ...],
        intermediates: List[Fraction],
        masks: List[int],
        i: int,
        k: int,
    ) -> Optional[Fraction]:
        """Fragment ``P(i, k)``'s cost, memoized on its determining key.

        The cost (read outer input, allocation-LP join costs, write
        output) is a function of the relation *set* before the fragment
        and the ordered inner relations — nothing else.
        """
        inners = sequence[i:k + 1]
        key = (masks[i - 1], inners)
        memo = self._fragments
        if key in memo:
            self.fragments_reused += 1
            return memo[key]
        self.fragments_computed += 1
        kernel = self.kernel
        outer_sizes = [intermediates[j - 1] for j in range(i, k + 1)]
        inner_sizes = [kernel.sizes[sequence[j]] for j in range(i, k + 1)]
        # Deferred import: hashjoin's search layers import this module.
        from repro.hashjoin.allocation import allocate_memory

        allocation = allocate_memory(
            kernel.instance.model, outer_sizes, inner_sizes, kernel.memory
        )
        value: Optional[Fraction]
        if allocation is None:
            value = None
        else:
            value = intermediates[i - 1] + allocation.total_join_cost + intermediates[k]
        memo[key] = value
        return value
