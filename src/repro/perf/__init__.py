"""High-performance cost-evaluation layer: compiled instance kernels,
incremental (delta) evaluation for the QO_N/QO_H search loops, and the
``repro bench`` microbenchmark suite.

Kept import-light: the benchmark harness (``repro.perf.bench``) imports
the optimizer stack and must be imported explicitly, because the
optimizer stack in turn imports the evaluators exported here.
"""

from repro.perf.incremental import (
    AdjacentSwap,
    Move,
    PrefixEvaluator,
    Reinsert,
    sample_moves,
)
from repro.perf.kernels import (
    CompiledQOH,
    CompiledQON,
    compile_qoh,
    compile_qon,
)
from repro.perf.qoh import QOHEvaluator

__all__ = [
    "AdjacentSwap",
    "CompiledQOH",
    "CompiledQON",
    "Move",
    "PrefixEvaluator",
    "QOHEvaluator",
    "Reinsert",
    "compile_qoh",
    "compile_qon",
    "sample_moves",
]
