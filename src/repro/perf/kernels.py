"""Compiled per-instance kernels for the hot cost-evaluation loops.

Every optimizer spends its time evaluating ``C(Z)`` (QO_N) or the
decomposition DP (QO_H) over and over, and the reference implementations
pay per *evaluation* for work that only depends on the *instance*:
``instance.selectivity``/``access_cost`` dict lookups behind
``graph.has_edge`` checks, and the ``O(n log n)`` permutation sort in
``check_sequence``.  :func:`compile_qon` / :func:`compile_qoh` hoist all
of it into dense tuples and per-vertex adjacency bitmasks, computed once
per instance:

* ``sizes[v]`` — relation size ``t_v``;
* ``sel[u][v]`` — selectivity ``s_uv`` (``1`` off edges and on the
  diagonal), exactly the values the instance accessors return;
* ``access[u][v]`` — probe cost ``w_uv`` into ``R_v`` (``t_v`` off
  edges; the diagonal is a placeholder and never consulted);
* ``adj[v]`` — bitmask of the vertices ``u`` with ``s_uv != 1``: the
  only selectivity factors the reference cost functions multiply in
  (they skip unit selectivities), so prefix-size products iterate set
  bits instead of scanning the whole prefix through ``has_edge``.

The kernels are pure data: they never round, convert or reorder values,
so any computation built from them can reproduce the reference results
bit for bit.  ``exact`` records whether every statistic is ``int`` /
``Fraction`` (or an exact counting proxy); the incremental evaluator
only takes algebraic shortcuts when it is True.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from contextlib import contextmanager
from fractions import Fraction
from typing import (
    TYPE_CHECKING,
    Iterator,
    List,
    Sequence,
    Tuple,
    Union,
)

from repro.observability.metrics import inc as _metric_inc
from repro.utils.validation import require

if TYPE_CHECKING:  # instance classes only for annotations (import cycle)
    from repro.hashjoin.instance import QOHInstance
    from repro.joinopt.instance import QONInstance

_PERMUTATION_MESSAGE = "join sequence must be a permutation of range({n})"


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def is_exact_value(value: object) -> bool:
    """True for ``int``/``Fraction`` and exact counting proxies."""
    if isinstance(value, (int, Fraction)):
        return True
    return bool(getattr(value, "exact_proxy", False))


class CompiledQON:
    """Dense read-only view of a :class:`QONInstance` (see module docs)."""

    __slots__ = (
        "instance", "n", "full_mask", "sizes", "sel", "access", "adj",
        "exact", "__weakref__",
    )

    def __init__(self, instance: QONInstance) -> None:
        n = instance.num_relations
        graph = instance.graph
        self.instance = instance
        self.n = n
        self.full_mask = (1 << n) - 1
        self.sizes: Tuple = tuple(instance.size(r) for r in range(n))
        sel_rows: List[Tuple] = []
        access_rows: List[Tuple] = []
        adjacency: List[int] = []
        exact = all(is_exact_value(t) for t in self.sizes)
        for u in range(n):
            srow: List = []
            arow: List = []
            mask = 0
            for v in range(n):
                if v == u:
                    srow.append(1)
                    arow.append(self.sizes[u])  # placeholder, never read
                    continue
                selectivity = instance.selectivity(u, v)
                access = instance.access_cost(u, v)
                srow.append(selectivity)
                arow.append(access)
                exact = exact and is_exact_value(access)
                if graph.has_edge(u, v) and selectivity != 1:
                    mask |= 1 << v
                    exact = exact and is_exact_value(selectivity)
            sel_rows.append(tuple(srow))
            access_rows.append(tuple(arow))
            adjacency.append(mask)
        self.sel: Tuple[Tuple, ...] = tuple(sel_rows)
        self.access: Tuple[Tuple, ...] = tuple(access_rows)
        self.adj: Tuple[int, ...] = tuple(adjacency)
        self.exact = exact

    def check_permutation(self, sequence: Sequence[int]) -> None:
        """The ``check_sequence`` contract in O(n) via the bitmask."""
        n = self.n
        mask = 0
        for vertex in sequence:
            if isinstance(vertex, int) and 0 <= vertex < n:
                mask |= 1 << vertex
        require(
            len(sequence) == n and mask == self.full_mask,
            _PERMUTATION_MESSAGE.format(n=n),
        )


class CompiledQOH:
    """Dense read-only view of a :class:`QOHInstance`.

    QO_H statistics are all ``int``/``Fraction`` by construction, so the
    compiled form is always exact; ``hjmin`` (the per-relation hash
    floor) and the feasibility bitmask are precomputed so sequence
    feasibility is a mask test instead of n model calls.
    """

    __slots__ = (
        "instance", "n", "full_mask", "sizes", "sel", "adj",
        "hjmin", "memory", "feasible_mask", "__weakref__",
    )

    def __init__(self, instance: QOHInstance) -> None:
        n = instance.num_relations
        graph = instance.graph
        self.instance = instance
        self.n = n
        self.full_mask = (1 << n) - 1
        self.sizes: Tuple[int, ...] = tuple(
            instance.size(r) for r in range(n)
        )
        self.memory = instance.memory
        self.hjmin: Tuple[int, ...] = tuple(
            instance.hjmin(r) for r in range(n)
        )
        feasible = 0
        for r in range(n):
            if self.hjmin[r] <= self.memory:
                feasible |= 1 << r
        self.feasible_mask = feasible
        sel_rows: List[Tuple] = []
        adjacency: List[int] = []
        for u in range(n):
            srow: List = []
            mask = 0
            for v in range(n):
                if v == u:
                    srow.append(Fraction(1))
                    continue
                selectivity = instance.selectivity(u, v)
                srow.append(selectivity)
                if graph.has_edge(u, v) and selectivity != 1:
                    mask |= 1 << v
            sel_rows.append(tuple(srow))
            adjacency.append(mask)
        self.sel: Tuple[Tuple, ...] = tuple(sel_rows)
        self.adj: Tuple[int, ...] = tuple(adjacency)

    def check_permutation(self, sequence: Sequence[int]) -> None:
        """The permutation contract in O(n) via the bitmask."""
        n = self.n
        mask = 0
        for vertex in sequence:
            if isinstance(vertex, int) and 0 <= vertex < n:
                mask |= 1 << vertex
        require(
            len(sequence) == n and mask == self.full_mask,
            _PERMUTATION_MESSAGE.format(n=n),
        )

    def is_feasible(self, sequence: Sequence[int]) -> bool:
        """True if every inner relation's hjmin floor fits in memory."""
        feasible = self.feasible_mask
        return all(feasible >> r & 1 for r in sequence[1:])

    def extend_size(self, size: Fraction, mask: int, vertex: int) -> Fraction:
        """``N(X v)`` from ``N(X)`` (``mask`` = bits of ``X``).

        Multiplies the size and the non-unit selectivities into ``X``;
        ``Fraction`` arithmetic is exact, so the result is identical to
        the reference prefix-order product for any iteration order.
        """
        result = size * self.sizes[vertex]
        sel = self.sel[vertex]
        for u in iter_bits(self.adj[vertex] & mask):
            result = result * sel[u]
        return result


# Compiled kernels are memoized per live instance so repeated optimizer
# calls in a sweep share one compilation.  The memo holds the *kernel*
# weakly, keyed by instance id: the kernel strongly references its
# instance, so while any evaluator keeps the kernel alive the id cannot
# be recycled, and when the last evaluator dies both the entry and the
# instance become collectable — the memo never pins either side.  (A
# WeakKeyDictionary would deadlock here: its value referencing its key
# keeps the key alive forever.)
_QON_CACHE: "weakref.WeakValueDictionary[int, CompiledQON]" = (
    weakref.WeakValueDictionary()
)
_QOH_CACHE: "weakref.WeakValueDictionary[int, CompiledQOH]" = (
    weakref.WeakValueDictionary()
)

#: Monotone count of kernel constructions in this process.  The sweep
#: executor reads deltas of this to report ``kernels_compiled`` — the
#: direct measure of how well worker-persistent instances (the runtime
#: registry's live tier) are amortizing compilation.
_COMPILES = 0

# The weak memo alone cannot make kernels persist *across* tasks: the
# evaluator is the only strong reference, so when a task's evaluator
# dies the kernel is collected and the next task recompiles it even if
# the instance object itself lived on.  The pin tier fixes that: a
# bounded strong LRU of recently compiled kernels, enabled by the sweep
# executor (workers pin while a registry keeps decoded instances live;
# the serial loop pins for the duration of a sweep).  Pinning is pure
# retention — lookups still go through the weak memo with its identity
# check — so it can never change which kernel a caller sees, only how
# long one stays warm.
_PINNED: "OrderedDict[int, Union[CompiledQON, CompiledQOH]]" = OrderedDict()
_PIN_LIMIT = 0


def compiles_total() -> int:
    """Kernels actually constructed so far (memo hits don't count)."""
    return _COMPILES


def pin_kernels(limit: int) -> None:
    """Strongly retain up to ``limit`` most-recently-used kernels.

    ``0`` (the default) disables pinning and releases every pinned
    kernel.  A pinned kernel keeps its instance alive, so callers
    should bound ``limit`` by how many distinct instances they expect
    live at once (the executor uses the registry's live-tier bound).
    """
    global _PIN_LIMIT
    require(limit >= 0, "kernel pin limit must be >= 0")
    _PIN_LIMIT = limit
    if limit == 0:
        _PINNED.clear()
    while len(_PINNED) > limit:
        _PINNED.popitem(last=False)


@contextmanager
def pinned_kernels(limit: int) -> Iterator[None]:
    """Scoped :func:`pin_kernels`: restores the previous limit on exit."""
    previous = _PIN_LIMIT
    pin_kernels(limit)
    try:
        yield
    finally:
        pin_kernels(previous)


def _pin(key: int, kernel: Union[CompiledQON, CompiledQOH]) -> None:
    if _PIN_LIMIT == 0:
        return
    _PINNED[key] = kernel
    _PINNED.move_to_end(key)
    while len(_PINNED) > _PIN_LIMIT:
        _PINNED.popitem(last=False)


def compile_qon(instance: "QONInstance") -> CompiledQON:
    """The compiled kernel for ``instance`` (memoized per live object)."""
    global _COMPILES
    if isinstance(instance, CompiledQON):
        return instance
    kernel = _QON_CACHE.get(id(instance))
    if kernel is None or kernel.instance is not instance:
        kernel = CompiledQON(instance)
        _QON_CACHE[id(instance)] = kernel
        _COMPILES += 1
        _metric_inc("perf.kernel_compiles")
    _pin(id(instance), kernel)
    return kernel


def compile_qoh(instance: "QOHInstance") -> CompiledQOH:
    """The compiled kernel for ``instance`` (memoized per live object)."""
    global _COMPILES
    if isinstance(instance, CompiledQOH):
        return instance
    kernel = _QOH_CACHE.get(id(instance))
    if kernel is None or kernel.instance is not instance:
        kernel = CompiledQOH(instance)
        _QOH_CACHE[id(instance)] = kernel
        _COMPILES += 1
        _metric_inc("perf.kernel_compiles")
    _pin(id(instance), kernel)
    return kernel
