"""Exact-arithmetic operation counting for the perf benchmarks.

``repro bench`` must report *deterministic* work measures alongside
wall-clock time — wall time depends on the machine, but the number of
big-int multiplications per neighbor evaluation does not.
:class:`CountingValue` wraps an exact ``int``/``Fraction`` and forwards
arithmetic to it while ticking an :class:`OpCounter`; wrapping every
statistic of an instance (:func:`counting_qon_instance`) makes both the
reference cost path and the kernel path count themselves, with values
that stay exactly equal to the unwrapped run.

The proxies set ``exact_proxy = True`` so the compiled kernels treat
them as exact arithmetic (see ``repro.perf.kernels.is_exact_value``)
and take the same incremental shortcuts they would for the raw values.
Only the benchmark harness and tests build these; the hot paths never
pay for the indirection.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Tuple, Union

from repro.joinopt.instance import QONInstance

ExactValue = Union[int, Fraction]


class OpCounter:
    """Mutable tally of exact arithmetic operations."""

    __slots__ = ("mults", "divs", "adds")

    def __init__(self) -> None:
        self.mults = 0
        self.divs = 0
        self.adds = 0

    def reset(self) -> None:
        self.mults = 0
        self.divs = 0
        self.adds = 0

    @property
    def multiplicative(self) -> int:
        """Multiplications plus exact divisions (the big-int work)."""
        return self.mults + self.divs

    def snapshot(self) -> Dict[str, int]:
        return {"mults": self.mults, "divs": self.divs, "adds": self.adds}

    def __repr__(self) -> str:
        return (
            f"OpCounter(mults={self.mults}, divs={self.divs}, "
            f"adds={self.adds})"
        )


def _unwrap(value: object) -> object:
    if isinstance(value, CountingValue):
        return value.value
    return value


def _exact_quotient(numerator: ExactValue, denominator: ExactValue) -> ExactValue:
    """Exact division, preserving ``int`` when the quotient is integral."""
    if isinstance(numerator, int) and isinstance(denominator, int):
        quotient, remainder = divmod(numerator, denominator)
        if remainder == 0:
            return quotient
        return Fraction(numerator, denominator)
    result = Fraction(numerator) / Fraction(denominator)
    return result


class CountingValue:
    """An exact number that counts the operations applied to it.

    ``repr`` delegates to the wrapped value so instance fingerprints
    (which hash ``repr`` of the statistics) are unchanged by wrapping.
    """

    __slots__ = ("value", "counter")

    #: Marks the proxy as exact arithmetic for the compiled kernels.
    exact_proxy = True

    def __init__(self, value: ExactValue, counter: OpCounter) -> None:
        if isinstance(value, CountingValue):
            value = value.value
        self.value = value
        self.counter = counter

    # -- arithmetic (counted) ----------------------------------------
    def __mul__(self, other: object) -> "CountingValue":
        self.counter.mults += 1
        return CountingValue(self.value * _unwrap(other), self.counter)

    def __rmul__(self, other: object) -> "CountingValue":
        self.counter.mults += 1
        return CountingValue(_unwrap(other) * self.value, self.counter)

    def __truediv__(self, other: object) -> "CountingValue":
        self.counter.divs += 1
        return CountingValue(
            _exact_quotient(self.value, _unwrap(other)), self.counter
        )

    def __rtruediv__(self, other: object) -> "CountingValue":
        self.counter.divs += 1
        return CountingValue(
            _exact_quotient(_unwrap(other), self.value), self.counter
        )

    def __floordiv__(self, other: object) -> "CountingValue":
        self.counter.divs += 1
        return CountingValue(self.value // _unwrap(other), self.counter)

    def __add__(self, other: object) -> "CountingValue":
        self.counter.adds += 1
        return CountingValue(self.value + _unwrap(other), self.counter)

    def __radd__(self, other: object) -> "CountingValue":
        self.counter.adds += 1
        return CountingValue(_unwrap(other) + self.value, self.counter)

    def __sub__(self, other: object) -> "CountingValue":
        self.counter.adds += 1
        return CountingValue(self.value - _unwrap(other), self.counter)

    def __rsub__(self, other: object) -> "CountingValue":
        self.counter.adds += 1
        return CountingValue(_unwrap(other) - self.value, self.counter)

    # -- comparisons (free, like the reference path's) ---------------
    def __eq__(self, other: object) -> bool:
        return self.value == _unwrap(other)

    def __ne__(self, other: object) -> bool:
        return self.value != _unwrap(other)

    def __lt__(self, other: object) -> bool:
        return self.value < _unwrap(other)

    def __le__(self, other: object) -> bool:
        return self.value <= _unwrap(other)

    def __gt__(self, other: object) -> bool:
        return self.value > _unwrap(other)

    def __ge__(self, other: object) -> bool:
        return self.value >= _unwrap(other)

    def __hash__(self) -> int:
        return hash(self.value)

    def __bool__(self) -> bool:
        return bool(self.value)

    def __int__(self) -> int:
        return int(self.value)

    def __repr__(self) -> str:
        return repr(self.value)


def counting_qon_instance(
    instance: QONInstance, counter: OpCounter
) -> QONInstance:
    """``instance`` with every statistic wrapped in a counting proxy.

    The wrapped instance evaluates to exactly the same (unwrapped-equal)
    costs; the counter is reset after construction so only the cost
    evaluations performed afterwards are tallied.
    """
    n = instance.num_relations
    graph = instance.graph
    sizes = [CountingValue(instance.size(r), counter) for r in range(n)]
    selectivities: Dict[Tuple[int, int], CountingValue] = {
        edge: CountingValue(instance.selectivity(*edge), counter)
        for edge in graph.edges
    }
    access_costs: Dict[Tuple[int, int], CountingValue] = {}
    for u, v in graph.edges:
        access_costs[(u, v)] = CountingValue(
            instance.access_cost(u, v), counter
        )
        access_costs[(v, u)] = CountingValue(
            instance.access_cost(v, u), counter
        )
    wrapped = QONInstance(
        graph, sizes, selectivities, access_costs, validate=False
    )
    counter.reset()
    return wrapped
