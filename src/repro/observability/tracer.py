"""Hierarchical span tracing with per-span counters.

The benchmark layer needs to answer "where did the time go" when a
heuristic is driven across a hardness-gap instance: which reduction
stage dominated, how many cost evaluations each optimizer performed,
how deep the subproblem lattice grew.  A :class:`Tracer` records a tree
of *spans* — named, nested, wall-clocked intervals — each carrying an
integer counter map (``cost_evaluations``, ``cache_hits``,
``plans_explored``, ...).

Design constraints, in order:

1. **Zero-overhead default.**  When no tracer is installed, the
   module-level :func:`span` / :func:`count` helpers cost one global
   read (and, for ``span``, return a shared no-op context manager).
   Instrumented code never checks a flag itself.
2. **Exception safety.**  Spans close via ``with``-block unwinding, so
   a task timeout (:class:`~repro.runtime.runner.SweepTimeout`) or any
   optimizer error still yields a complete, well-nested trace.
   :meth:`Tracer.finish` additionally force-closes anything left open.
3. **Picklability.**  Finished spans are plain dicts, so per-worker
   traces travel back through a multiprocessing pool unchanged and the
   parent can merge them deterministically.

A tracer is installed for a dynamic extent with :func:`use_tracer`
(mirroring :func:`repro.runtime.costcache.use_cache`) or process-wide
with :func:`install_tracer`.

Span record layout (the in-memory form of one ``repro.trace/1`` line)::

    {"id": int,            # unique within the trace, creation order
     "parent": int | None, # id of the enclosing span (None for roots)
     "name": str,          # e.g. "optimize.dp", "reduce.f_N"
     "start_s": float,     # offset from the trace origin (or, after a
                           #  cross-process merge, from the subtree's
                           #  local origin)
     "duration_s": float,  # wall-clock span length
     "counters": {str: int},
     "attrs": {str: ...}}  # optional, e.g. task label/optimizer
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

#: The process-wide tracer default (:func:`install_tracer`); None means
#: "tracing off".  :func:`use_tracer` scopes a tracer to the *current
#: thread's* dynamic extent on top of this default, so concurrent
#: server worker threads can each trace their own request without
#: clobbering each other.
_INSTALLED: Optional["Tracer"] = None

#: Per-thread dynamic-extent override; holds an entry only while the
#: thread is inside a :func:`use_tracer` block (an explicit ``None``
#: entry masks the process-wide default for that extent).
_TLS = threading.local()

_UNSET = object()


class _NullSpan:
    """Shared no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager that opens ``name`` on enter, closes on exit."""

    __slots__ = ("_tracer", "_name", "_record")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._record: Optional[dict] = None

    def __enter__(self) -> "_SpanHandle":
        self._record = self._tracer._open(self._name)
        return self

    def __exit__(self, *_exc: object) -> None:
        self._tracer._close(self._record)
        self._record = None


class Tracer:
    """Collects a tree of spans; one instance per traced extent.

    A root span (``root_name``) is opened at construction so counters
    reported outside any explicit span still land somewhere.  Call
    :meth:`finish` to close it (and anything an exception left open)
    and obtain the finished records.
    """

    __slots__ = ("_origin", "_records", "_stack", "_next_id", "_finished")

    def __init__(self, root_name: str = "trace") -> None:
        self._origin = time.perf_counter()
        self._records: List[dict] = []
        self._stack: List[dict] = []
        self._next_id = 0
        self._finished = False
        self._open(root_name)

    def _open(self, name: str) -> dict:
        record = {
            "id": self._next_id,
            "parent": self._stack[-1]["id"] if self._stack else None,
            "name": name,
            "start_s": time.perf_counter() - self._origin,
            "duration_s": 0.0,
            "counters": {},
        }
        self._next_id += 1
        # Appending at open time keeps the record list topologically
        # sorted: every parent precedes its children.
        self._records.append(record)
        self._stack.append(record)
        return record

    def _close(self, record: Optional[dict]) -> None:
        if record is None or not self._stack:
            return
        now = time.perf_counter() - self._origin
        # Unwind to (and including) the given record; intermediate
        # spans can only be left open by an exception that bypassed
        # their __exit__, which cannot happen with `with` blocks, but
        # close them defensively anyway.
        while self._stack:
            top = self._stack.pop()
            top["duration_s"] = now - top["start_s"]
            if top is record:
                break

    def span(self, name: str) -> _SpanHandle:
        """A context manager recording ``name`` as a child of the
        innermost open span."""
        return _SpanHandle(self, name)

    def count(self, key: str, amount: int = 1) -> None:
        """Add ``amount`` to ``key`` on the innermost open span."""
        target = self._stack[-1] if self._stack else self._records[0]
        counters = target["counters"]
        counters[key] = counters.get(key, 0) + amount

    @property
    def root(self) -> dict:
        """The root span record (valid before and after finish)."""
        return self._records[0]

    @property
    def current_span_id(self) -> int:
        """Id of the innermost open span (the root when none is)."""
        target = self._stack[-1] if self._stack else self._records[0]
        return int(target["id"])

    def graft(
        self, records: List[dict], origin: Optional[str] = None
    ) -> None:
        """Adopt a finished span subtree under the innermost open span.

        ``records`` must be topologically sorted (every parent precedes
        its children — any finished trace is).  They are renumbered
        into this tracer's id space; roots become children of the
        current span.  This is how a server-side trace returned over
        RPC is stitched into the client's trace.  ``origin``, when
        given, tags each grafted root's attrs so reports can flag the
        clock-domain boundary (grafted ``start_s`` offsets are local to
        the remote origin; durations and counters are exact).
        """
        if not records:
            return
        parent_id = self.current_span_id
        id_map: Dict[int, int] = {}
        for record in records:
            merged = dict(record)
            new_id = self._next_id
            self._next_id += 1
            id_map[record["id"]] = new_id
            merged["id"] = new_id
            old_parent = record["parent"]
            if old_parent is None or old_parent not in id_map:
                merged["parent"] = parent_id
                if origin is not None:
                    attrs = dict(merged.get("attrs", {}))
                    attrs["origin"] = origin
                    merged["attrs"] = attrs
            else:
                merged["parent"] = id_map[old_parent]
            self._records.append(merged)

    def finish(self) -> List[dict]:
        """Close every open span (root included); return the records.

        Idempotent: repeated calls return the same list.
        """
        if not self._finished:
            self._close(self._records[0])
            self._finished = True
        return self._records

    def records(self) -> List[dict]:
        """The records collected so far (finished or not)."""
        return self._records


def active_tracer() -> Optional[Tracer]:
    """The tracer instrumented code should report to, or None.

    The current thread's :func:`use_tracer` extent wins; outside any
    extent the process-wide :func:`install_tracer` default applies.
    """
    return _TLS.__dict__.get("tracer", _INSTALLED)


def install_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as the process-wide default; returns the
    previous default.  Threads inside a :func:`use_tracer` extent keep
    their scoped tracer."""
    global _INSTALLED
    previous = _INSTALLED
    _INSTALLED = tracer
    return previous


@contextmanager
def use_tracer(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Install ``tracer`` for the dynamic extent of the ``with`` block.

    The installation is scoped to the current thread, so concurrent
    extents in different threads (the service worker pool) each see
    their own tracer; ``use_tracer(None)`` masks any process-wide
    default within the block.
    """
    previous = _TLS.__dict__.get("tracer", _UNSET)
    _TLS.tracer = tracer
    try:
        yield tracer
    finally:
        if previous is _UNSET:
            del _TLS.tracer
        else:
            _TLS.tracer = previous


def span(name: str) -> object:
    """Open a span on the active tracer; no-op when tracing is off."""
    tracer = _TLS.__dict__.get("tracer", _INSTALLED)
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name)


def count(key: str, amount: int = 1) -> None:
    """Bump a counter on the active span; no-op when tracing is off."""
    tracer = _TLS.__dict__.get("tracer", _INSTALLED)
    if tracer is not None:
        tracer.count(key, amount)


def traced(
    name: str, explored_counter: str = "plans_explored"
) -> Callable[[Callable], Callable]:
    """Decorator: run the function under a span named ``name``.

    When the wrapped function returns an object with an integer
    ``explored`` attribute (every optimizer result does), its value is
    recorded on the span as ``explored_counter`` — the per-span "plans
    examined" attribution the benchmarks report.

    With no active tracer the wrapper is a single global read plus one
    call frame; the function behaves exactly as before.
    """
    import functools

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object) -> object:
            tracer = _TLS.__dict__.get("tracer", _INSTALLED)
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(name):
                result = fn(*args, **kwargs)
                explored = getattr(result, "explored", None)
                if isinstance(explored, int) and explored > 0:
                    tracer.count(explored_counter, explored)
                return result

        return wrapper

    return decorate


def counter_totals(records: List[dict]) -> Dict[str, int]:
    """Sum every counter over all spans of a trace."""
    totals: Dict[str, int] = {}
    for record in records:
        for key, value in record["counters"].items():
            totals[key] = totals.get(key, 0) + value
    return totals
