"""Structured tracing for the reduction/optimization pipeline.

Public surface:

* :class:`Tracer`, :func:`use_tracer` / :func:`install_tracer` /
  :func:`active_tracer` — collect a span tree for a dynamic extent;
* :func:`span` / :func:`count` / :func:`traced` — instrumentation
  points (no-ops when no tracer is installed);
* :data:`SCHEMA`, :func:`write_trace` / :func:`load_trace` /
  :func:`validate_trace`, :class:`Trace` — ``repro.trace/1`` JSONL;
* :func:`summary_table` / :func:`flame_report` / :func:`aggregate` /
  :func:`hot_span` / :func:`counter_totals` — reporting.
"""

from repro.observability.report import (
    aggregate,
    flame_report,
    hot_span,
    summary_table,
)
from repro.observability.trace_io import (
    SCHEMA,
    Trace,
    load_trace,
    validate_trace,
    write_trace,
)
from repro.observability.tracer import (
    Tracer,
    active_tracer,
    count,
    counter_totals,
    install_tracer,
    span,
    traced,
    use_tracer,
)

__all__ = [
    "SCHEMA",
    "Trace",
    "Tracer",
    "active_tracer",
    "aggregate",
    "count",
    "counter_totals",
    "flame_report",
    "hot_span",
    "install_tracer",
    "load_trace",
    "span",
    "summary_table",
    "traced",
    "use_tracer",
    "validate_trace",
    "write_trace",
]
