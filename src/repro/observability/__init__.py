"""Structured tracing and live telemetry for the pipeline.

Public surface:

* :class:`Tracer`, :func:`use_tracer` / :func:`install_tracer` /
  :func:`active_tracer` — collect a span tree for a dynamic extent;
* :func:`span` / :func:`count` / :func:`traced` — instrumentation
  points (no-ops when no tracer is installed);
* :data:`SCHEMA`, :func:`write_trace` / :func:`load_trace` /
  :func:`validate_trace`, :class:`Trace` — ``repro.trace/1`` JSONL;
* :func:`summary_table` / :func:`flame_report` / :func:`aggregate` /
  :func:`hot_span` / :func:`counter_totals` — reporting;
* :class:`MetricsRegistry`, :func:`use_metrics` /
  :func:`install_metrics` / :func:`active_metrics`, the
  :func:`metric_inc` / :func:`metric_gauge` / :func:`metric_observe`
  emission points, :data:`METRICS_SCHEMA`, :func:`validate_metrics` —
  live counters/gauges/histograms (``repro.metrics/1``);
* :class:`EventLog`, :func:`use_event_log` /
  :func:`install_event_log` / :func:`active_event_log` /
  :func:`emit_event`, :data:`EVENTS_SCHEMA`, :data:`EVENT_KINDS`,
  :func:`validate_event` / :func:`load_events` — the structured
  operational event stream (``repro.events/1``);
* :class:`TelemetryExporter`, :func:`render_prometheus`,
  :func:`load_metrics_file` / :func:`summarize_metrics` /
  :func:`diff_metrics` — snapshot export and file tooling.
"""

from repro.observability.events import (
    EVENT_KINDS,
    EVENTS_SCHEMA,
    EventLog,
    active_event_log,
    install_event_log,
    load_events,
    use_event_log,
    validate_event,
)
from repro.observability.events import emit as emit_event
from repro.observability.export import (
    TelemetryExporter,
    diff_metrics,
    load_metrics_file,
    render_prometheus,
    summarize_metrics,
)
from repro.observability.metrics import (
    LATENCY_BOUNDARIES_MS,
    METRICS_SCHEMA,
    MetricsRegistry,
    active_metrics,
    install_metrics,
    snapshot_percentile,
    use_metrics,
    validate_metrics,
)
from repro.observability.metrics import inc as metric_inc
from repro.observability.metrics import observe as metric_observe
from repro.observability.metrics import set_gauge as metric_gauge
from repro.observability.report import (
    aggregate,
    flame_report,
    hot_span,
    summary_table,
    trace_origins,
)
from repro.observability.trace_io import (
    SCHEMA,
    Trace,
    load_trace,
    validate_trace,
    write_trace,
)
from repro.observability.tracer import (
    Tracer,
    active_tracer,
    count,
    counter_totals,
    install_tracer,
    span,
    traced,
    use_tracer,
)

__all__ = [
    "EVENT_KINDS",
    "EVENTS_SCHEMA",
    "EventLog",
    "LATENCY_BOUNDARIES_MS",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "SCHEMA",
    "TelemetryExporter",
    "Trace",
    "Tracer",
    "active_event_log",
    "active_metrics",
    "active_tracer",
    "aggregate",
    "count",
    "counter_totals",
    "diff_metrics",
    "emit_event",
    "flame_report",
    "hot_span",
    "install_event_log",
    "install_metrics",
    "install_tracer",
    "load_events",
    "load_metrics_file",
    "load_trace",
    "metric_gauge",
    "metric_inc",
    "metric_observe",
    "render_prometheus",
    "snapshot_percentile",
    "span",
    "summarize_metrics",
    "summary_table",
    "trace_origins",
    "traced",
    "use_event_log",
    "use_metrics",
    "use_tracer",
    "validate_event",
    "validate_metrics",
    "validate_trace",
    "write_trace",
]
