"""Process-wide live metrics: counters, gauges, exact histograms.

The tracer (:mod:`repro.observability.tracer`) answers "where did the
time go" *after* a run finishes; this module answers "what is the
system doing *right now*".  A :class:`MetricsRegistry` holds three
kinds of instruments, all addressed by dotted, namespaced names
(``service.queue_depth``, ``runtime.cost_evaluations``,
``perf.kernel_compiles``):

* **counters** — monotonic non-negative integers (:meth:`inc`);
* **gauges** — last-write-wins numeric levels (:meth:`set_gauge`);
* **histograms** — fixed-boundary distributions with *exact integer*
  bucket counts (:meth:`observe`): no sampling, no decay, so counter
  identities (``sum of buckets == count``) hold bit-exactly.

Design constraints mirror the tracer, in order:

1. **Zero-overhead default.**  When no registry is installed the
   module-level :func:`inc` / :func:`set_gauge` / :func:`observe`
   helpers cost one global read and return.  Instrumented hot paths
   (cost-cache lookups, registry gets) never check a flag themselves.
2. **Thread safety with exactness.**  Every mutation takes the
   registry lock; N threads performing M increments each always sum to
   exactly N*M.  The lock is held for a dict update only — no I/O.
3. **Snapshot isolation.**  :meth:`snapshot` returns a deep, plain-dict
   ``repro.metrics/1`` record decoupled from live state, safe to hand
   to the exporter thread or serialize over the service RPC.

A registry is installed for a dynamic extent with :func:`use_metrics`
(per-thread, mirroring :func:`~repro.observability.tracer.use_tracer`)
or process-wide with :func:`install_metrics`.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.utils.validation import require

#: Schema tag stamped on every exported metrics snapshot line.
METRICS_SCHEMA = "repro.metrics/1"

#: Default latency histogram boundaries, in milliseconds.  Chosen to
#: bracket the service daemon's observed request range: sub-millisecond
#: cache hits up to multi-second cold sweeps.
LATENCY_BOUNDARIES_MS: Tuple[float, ...] = (
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: The process-wide registry default (:func:`install_metrics`); None
#: means "metrics off".  :func:`use_metrics` scopes a registry to the
#: current thread's dynamic extent on top of this default.
_INSTALLED: Optional["MetricsRegistry"] = None

#: Per-thread dynamic-extent override; holds an entry only while the
#: thread is inside a :func:`use_metrics` block (an explicit ``None``
#: entry masks the process-wide default for that extent).
_TLS = threading.local()

_UNSET = object()


class _Histogram:
    """Fixed-boundary histogram with exact integer bucket counts.

    ``boundaries`` are strictly increasing upper bounds; bucket ``i``
    counts observations ``v <= boundaries[i]`` (first match wins) and a
    final overflow bucket counts everything above the last boundary, so
    ``len(buckets) == len(boundaries) + 1`` and ``sum(buckets)``
    always equals ``count``.
    """

    __slots__ = ("boundaries", "buckets", "count", "total")

    def __init__(self, boundaries: Sequence[float]) -> None:
        require(len(boundaries) > 0, "histogram needs at least one boundary")
        previous = None
        for bound in boundaries:
            require(
                math.isfinite(float(bound)),
                "histogram boundaries must be finite",
            )
            require(
                previous is None or float(bound) > previous,
                "histogram boundaries must be strictly increasing",
            )
            previous = float(bound)
        self.boundaries: Tuple[float, ...] = tuple(
            float(bound) for bound in boundaries
        )
        self.buckets: List[int] = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        index = len(self.boundaries)
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                index = i
                break
        self.buckets[index] += 1
        self.count += 1
        self.total += value

    def percentile(self, q: int) -> float:
        """Nearest-rank percentile estimated from bucket upper bounds.

        Returns the upper boundary of the bucket containing the q-th
        percentile observation (the last finite boundary for overflow),
        or 0.0 when nothing has been observed.
        """
        require(0 < q <= 100, "percentile out of range")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * self.count))
        seen = 0
        for i, bucket in enumerate(self.buckets):
            seen += bucket
            if seen >= rank:
                if i < len(self.boundaries):
                    return self.boundaries[i]
                return self.boundaries[-1]
        return self.boundaries[-1]


# Metric names are dotted identifiers: `namespace.metric`.
def _valid_name(name: str) -> bool:
    if not name or "." not in name:
        return False
    for part in name.split("."):
        if not part or not part.replace("_", "a").isalnum():
            return False
        if part[0].isdigit():
            return False
    return True


class MetricsRegistry:
    """Thread-safe process-wide registry of live instruments.

    One instance per telemetry domain (the service daemon owns one for
    its lifetime; tests build throwaways).  All three instrument kinds
    share a single lock: contention is negligible because the critical
    sections are single dict updates, and a single lock makes
    :meth:`snapshot` a consistent cut across every instrument.
    """

    __slots__ = ("_lock", "_counters", "_gauges", "_histograms", "_start", "_seq")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}
        self._start = time.time()
        self._seq = 0

    # -- instruments ---------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` (a non-negative int) to counter ``name``."""
        require(_valid_name(name), f"bad metric name: {name!r}")
        require(
            isinstance(amount, int) and not isinstance(amount, bool)
            and amount >= 0,
            "counter increments must be non-negative ints",
        )
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        require(_valid_name(name), f"bad metric name: {name!r}")
        require(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(float(value)),
            "gauge values must be finite numbers",
        )
        with self._lock:
            self._gauges[name] = float(value)

    def declare_histogram(
        self, name: str, boundaries: Sequence[float]
    ) -> None:
        """Pre-declare histogram ``name`` with fixed ``boundaries``.

        Idempotent for identical boundaries; redeclaring with different
        boundaries is an error (bucket counts would become meaningless).
        """
        require(_valid_name(name), f"bad metric name: {name!r}")
        wanted = tuple(float(bound) for bound in boundaries)
        with self._lock:
            existing = self._histograms.get(name)
            if existing is not None:
                require(
                    existing.boundaries == wanted,
                    f"histogram {name!r} redeclared with different boundaries",
                )
                return
            self._histograms[name] = _Histogram(wanted)

    def observe(
        self,
        name: str,
        value: float,
        boundaries: Sequence[float] = LATENCY_BOUNDARIES_MS,
    ) -> None:
        """Record ``value`` into histogram ``name``.

        The histogram is created with ``boundaries`` on first touch;
        later calls ignore the argument (the first declaration pins the
        buckets for the registry's lifetime).
        """
        require(_valid_name(name), f"bad metric name: {name!r}")
        require(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(float(value)),
            "histogram observations must be finite numbers",
        )
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = _Histogram(boundaries)
                self._histograms[name] = histogram
            histogram.observe(float(value))

    # -- reading -------------------------------------------------------

    def counter_value(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram_percentile(self, name: str, q: int) -> float:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                return 0.0
            return histogram.percentile(q)

    def snapshot(self) -> dict:
        """A consistent ``repro.metrics/1`` cut of every instrument.

        ``seq`` increments per snapshot so exported lines are totally
        ordered even if the wall clock steps backwards.
        """
        now = time.time()
        with self._lock:
            self._seq += 1
            return {
                "schema": METRICS_SCHEMA,
                "seq": self._seq,
                "ts": now,
                "uptime_s": max(0.0, now - self._start),
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {
                        "boundaries": list(histogram.boundaries),
                        "buckets": list(histogram.buckets),
                        "count": histogram.count,
                        "sum": histogram.total,
                    }
                    for name, histogram in self._histograms.items()
                },
            }


def validate_metrics(snapshot: Mapping[str, object]) -> List[str]:
    """Schema problems in one ``repro.metrics/1`` snapshot ([] = ok)."""
    problems: List[str] = []
    if snapshot.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"schema is {snapshot.get('schema')!r}, want {METRICS_SCHEMA!r}"
        )
    seq = snapshot.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        problems.append("seq must be a positive int")
    for field in ("ts", "uptime_s"):
        value = snapshot.get(field)
        if (
            not isinstance(value, (int, float))
            or isinstance(value, bool)
            or not math.isfinite(float(value))
        ):
            problems.append(f"{field} must be a finite number")
    counters = snapshot.get("counters")
    if not isinstance(counters, Mapping):
        problems.append("counters must be a mapping")
    else:
        for name, value in counters.items():
            if not isinstance(name, str) or not _valid_name(name):
                problems.append(f"bad counter name: {name!r}")
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                problems.append(f"counter {name!r} must be a non-negative int")
    gauges = snapshot.get("gauges")
    if not isinstance(gauges, Mapping):
        problems.append("gauges must be a mapping")
    else:
        for name, value in gauges.items():
            if not isinstance(name, str) or not _valid_name(name):
                problems.append(f"bad gauge name: {name!r}")
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or not math.isfinite(float(value))
            ):
                problems.append(f"gauge {name!r} must be a finite number")
    histograms = snapshot.get("histograms")
    if not isinstance(histograms, Mapping):
        problems.append("histograms must be a mapping")
    else:
        for name, spec in histograms.items():
            if not isinstance(name, str) or not _valid_name(name):
                problems.append(f"bad histogram name: {name!r}")
            if not isinstance(spec, Mapping):
                problems.append(f"histogram {name!r} must be a mapping")
                continue
            boundaries = spec.get("boundaries")
            buckets = spec.get("buckets")
            count = spec.get("count")
            if not isinstance(boundaries, list) or not boundaries:
                problems.append(f"histogram {name!r} boundaries must be a list")
                continue
            if not isinstance(buckets, list) or len(buckets) != len(boundaries) + 1:
                problems.append(
                    f"histogram {name!r} needs len(boundaries)+1 buckets"
                )
                continue
            if any(
                not isinstance(b, int) or isinstance(b, bool) or b < 0
                for b in buckets
            ):
                problems.append(
                    f"histogram {name!r} buckets must be non-negative ints"
                )
                continue
            if not isinstance(count, int) or sum(buckets) != count:
                problems.append(
                    f"histogram {name!r} bucket sum must equal count"
                )
    return problems


def snapshot_percentile(
    histogram: Mapping[str, object], q: int
) -> float:
    """Nearest-rank percentile from one snapshot histogram payload.

    ``histogram`` is one value of a snapshot's ``histograms`` mapping
    (``repro top`` feeds the daemon's ``service.latency_ms`` here).
    """
    boundaries = histogram.get("boundaries")
    buckets = histogram.get("buckets")
    require(
        isinstance(boundaries, (list, tuple))
        and isinstance(buckets, (list, tuple)),
        "histogram payload needs boundaries and buckets lists",
    )
    assert isinstance(boundaries, (list, tuple))
    assert isinstance(buckets, (list, tuple))
    hist = _Histogram([float(b) for b in boundaries])
    hist.buckets = [int(b) for b in buckets]
    hist.count = sum(hist.buckets)
    return hist.percentile(q)


def active_metrics() -> Optional[MetricsRegistry]:
    """The registry instrumented code should report to, or None.

    The current thread's :func:`use_metrics` extent wins; outside any
    extent the process-wide :func:`install_metrics` default applies.
    """
    return _TLS.__dict__.get("metrics", _INSTALLED)


def install_metrics(
    registry: Optional[MetricsRegistry],
) -> Optional[MetricsRegistry]:
    """Install ``registry`` as the process-wide default; returns the
    previous default.  Threads inside a :func:`use_metrics` extent keep
    their scoped registry."""
    global _INSTALLED
    previous = _INSTALLED
    _INSTALLED = registry
    return previous


@contextmanager
def use_metrics(
    registry: Optional[MetricsRegistry],
) -> Iterator[Optional[MetricsRegistry]]:
    """Install ``registry`` for the dynamic extent of the ``with``
    block, scoped to the current thread; ``use_metrics(None)`` masks
    any process-wide default within the block."""
    previous = _TLS.__dict__.get("metrics", _UNSET)
    _TLS.metrics = registry
    try:
        yield registry
    finally:
        if previous is _UNSET:
            del _TLS.metrics
        else:
            _TLS.metrics = previous


def inc(name: str, amount: int = 1) -> None:
    """Bump a counter on the active registry; no-op when metrics are
    off (a single global read)."""
    registry = _TLS.__dict__.get("metrics", _INSTALLED)
    if registry is not None:
        registry.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active registry; no-op when metrics are off."""
    registry = _TLS.__dict__.get("metrics", _INSTALLED)
    if registry is not None:
        registry.set_gauge(name, value)


def observe(
    name: str,
    value: float,
    boundaries: Sequence[float] = LATENCY_BOUNDARIES_MS,
) -> None:
    """Record a histogram observation on the active registry; no-op
    when metrics are off."""
    registry = _TLS.__dict__.get("metrics", _INSTALLED)
    if registry is not None:
        registry.observe(name, value, boundaries)
