"""Text reports over traces: per-name aggregates and a flame tree.

Two views of the same records:

* :func:`aggregate` — flat "where did the time go" table rows, one per
  span *name*, with call counts, total and self time, and summed
  counters;
* :func:`flame_report` — a flame-style tree: same-named siblings under
  the same parent path are merged, each line showing total time, its
  share of the root, call count and the interesting counters.

Both work on the plain record lists produced by
:class:`~repro.observability.tracer.Tracer` or loaded via
:func:`~repro.observability.trace_io.load_trace`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Counters surfaced inline in the reports, in display order.
_SHOWN_COUNTERS = (
    "cost_evaluations",
    "cache_hits",
    "plans_explored",
    "subproblem_peak",
)


def trace_origins(records: Sequence[dict]) -> List[str]:
    """Distinct worker-local clock origins tagged on merged subtrees.

    Cross-process merges (:meth:`SweepResult.trace_records`, the
    service client's distributed-trace stitching) tag each grafted
    subtree root with an ``origin`` attr.  Spans under different
    origins have ``start_s`` offsets measured from *different* clocks,
    so their absolute positions are not comparable — only durations
    and counters are.  Returns the sorted distinct origin labels
    (empty for a single-origin trace).
    """
    origins = {
        str(record["attrs"]["origin"])
        for record in records
        if isinstance(record.get("attrs"), dict)
        and record["attrs"].get("origin") is not None
    }
    return sorted(origins)


def _origin_header(records: Sequence[dict]) -> List[str]:
    """Header lines warning when spans from several clocks are mixed."""
    origins = trace_origins(records)
    if len(origins) <= 1:
        return []
    shown = ", ".join(origins[:6]) + (", ..." if len(origins) > 6 else "")
    return [
        f"origins: {len(origins)} worker clock origins merged ({shown});"
        " start offsets are origin-local, durations/counters exact"
    ]


def _self_times(records: Sequence[dict]) -> Dict[int, float]:
    """duration minus the direct children's durations, per span id."""
    own = {r["id"]: r["duration_s"] for r in records}
    for record in records:
        parent = record["parent"]
        if parent is not None and parent in own:
            own[parent] -= record["duration_s"]
    return {span_id: max(0.0, value) for span_id, value in own.items()}


def aggregate(records: Sequence[dict]) -> List[dict]:
    """Per-name totals, sorted by total time descending.

    Each row: ``{"name", "calls", "total_s", "self_s", "counters"}``.
    """
    self_times = _self_times(records)
    rows: Dict[str, dict] = {}
    for record in records:
        row = rows.setdefault(
            record["name"],
            {"name": record["name"], "calls": 0, "total_s": 0.0,
             "self_s": 0.0, "counters": {}},
        )
        row["calls"] += 1
        row["total_s"] += record["duration_s"]
        row["self_s"] += self_times[record["id"]]
        for key, value in record["counters"].items():
            row["counters"][key] = row["counters"].get(key, 0) + value
    return sorted(rows.values(), key=lambda row: -row["total_s"])


def hot_span(records: Sequence[dict],
             skip: Tuple[str, ...] = ("sweep", "task")) -> Optional[Tuple[str, float]]:
    """The span name with the largest *self* time and its share.

    ``skip`` names structural containers (the sweep/task wrappers) that
    should not win the attribution.  Returns ``(name, fraction of the
    trace's wall clock)`` or None for an empty trace.
    """
    if not records:
        return None
    wall = sum(r["duration_s"] for r in records if r["parent"] is None)
    best_name, best_self = None, -1.0
    for row in aggregate(records):
        if row["name"] in skip:
            continue
        if row["self_s"] > best_self:
            best_name, best_self = row["name"], row["self_s"]
    if best_name is None:
        return None
    return best_name, (best_self / wall if wall > 0 else 0.0)


def _format_counters(counters: Dict[str, int]) -> str:
    parts = [
        f"{key}={counters[key]}" for key in _SHOWN_COUNTERS if key in counters
    ]
    parts.extend(
        f"{key}={value}" for key, value in sorted(counters.items())
        if key not in _SHOWN_COUNTERS
    )
    return "  ".join(parts)


def summary_table(records: Sequence[dict], top: Optional[int] = None) -> str:
    """The flat per-name table as printable text."""
    rows = aggregate(records)
    if top is not None:
        rows = rows[:top]
    width = max([len(row["name"]) for row in rows] + [4])
    header = (
        f"{'span':<{width}}  {'calls':>6}  {'total s':>9}  {'self s':>9}"
        "  counters"
    )
    lines = _origin_header(records) + [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['name']:<{width}}  {row['calls']:>6}  "
            f"{row['total_s']:>9.4f}  {row['self_s']:>9.4f}  "
            f"{_format_counters(row['counters'])}"
        )
    return "\n".join(lines)


def flame_report(records: Sequence[dict], max_depth: Optional[int] = None,
                 min_share: float = 0.0) -> str:
    """A flame-style tree: nested spans with durations and shares.

    Same-named siblings are merged (calls are summed), so a sweep of
    120 identical tasks renders as one line ``x120`` instead of 120.
    ``min_share`` hides merged nodes below that fraction of the root.
    """
    by_parent: Dict[Optional[int], List[dict]] = {}
    for record in records:
        by_parent.setdefault(record["parent"], []).append(record)
    roots = by_parent.get(None, [])
    wall = sum(r["duration_s"] for r in roots) or 1.0

    lines: List[str] = _origin_header(records)

    def render(group: List[dict], depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        merged: Dict[str, dict] = {}
        for record in group:
            node = merged.setdefault(
                record["name"],
                {"name": record["name"], "calls": 0, "total_s": 0.0,
                 "counters": {}, "ids": []},
            )
            node["calls"] += 1
            node["total_s"] += record["duration_s"]
            node["ids"].append(record["id"])
            for key, value in record["counters"].items():
                node["counters"][key] = node["counters"].get(key, 0) + value
        for node in sorted(merged.values(), key=lambda n: -n["total_s"]):
            share = node["total_s"] / wall
            if depth > 0 and share < min_share:
                continue
            calls = f" x{node['calls']}" if node["calls"] > 1 else ""
            counters = _format_counters(node["counters"])
            lines.append(
                f"{'  ' * depth}{node['name']}{calls}"
                f"  {node['total_s']:.4f}s ({share:6.1%})"
                + (f"  [{counters}]" if counters else "")
            )
            children: List[dict] = []
            for span_id in node["ids"]:
                children.extend(by_parent.get(span_id, []))
            if children:
                render(children, depth + 1)

    render(roots, 0)
    return "\n".join(lines)
