"""Structured operational event log (``repro.events/1`` JSONL).

Metrics (:mod:`repro.observability.metrics`) aggregate; events narrate.
An :class:`EventLog` appends one JSON object per line describing a
discrete thing that happened — a sweep task finishing, the daemon
rejecting a request under load, a worker dying mid-chunk — so an
operator can reconstruct *sequence*, not just totals.

The event taxonomy is pinned in :data:`EVENT_KINDS`:

* ``task.start`` / ``task.finish`` / ``task.retry`` /
  ``task.worker_death`` — sweep-executor lifecycle (emitted on the
  parent side as outcomes/attempts are observed, so one log describes
  one sweep regardless of worker count);
* ``service.admit`` / ``service.reject`` / ``service.coalesce`` /
  ``service.evict`` — daemon admission-control decisions;
* ``service.slow_request`` — a request whose wall time exceeded the
  daemon's ``--slow-ms`` threshold (sampled: every ``sample_every``-th
  slow request is written, so a pathological workload cannot turn the
  event log into a hot path).

Like the tracer and metrics registry, emission is zero-overhead when
no log is installed: the module-level :func:`emit` helper is one
global read.  Writes append under a lock with per-line flush, so a
crashed process leaves a valid (possibly truncated-by-one) JSONL file.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from typing import IO, Iterator, List, Mapping, Optional, Tuple, Union

from repro.utils.validation import require

#: Schema tag stamped on every event line.
EVENTS_SCHEMA = "repro.events/1"

#: The closed event taxonomy; :meth:`EventLog.emit` rejects anything
#: outside it so downstream consumers can switch exhaustively.
EVENT_KINDS: Tuple[str, ...] = (
    "task.start",
    "task.finish",
    "task.retry",
    "task.worker_death",
    "service.admit",
    "service.reject",
    "service.coalesce",
    "service.evict",
    "service.slow_request",
)

_INSTALLED: Optional["EventLog"] = None
_TLS = threading.local()
_UNSET = object()


class EventLog:
    """Thread-safe append-only ``repro.events/1`` writer.

    ``sink`` is a path (opened for append) or an already-open text
    stream (not closed by :meth:`close` — the caller owns it).
    ``slow_ms`` and ``sample_every`` configure
    :meth:`observe_latency`'s slow-request sampling.
    """

    def __init__(
        self,
        sink: Union[str, IO[str]],
        slow_ms: Optional[float] = None,
        sample_every: int = 1,
    ) -> None:
        require(sample_every >= 1, "sample_every must be >= 1")
        require(
            slow_ms is None or slow_ms >= 0,
            "slow_ms must be None or >= 0",
        )
        if isinstance(sink, str):
            self._stream: IO[str] = open(sink, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = sink
            self._owns_stream = False
        self._lock = threading.Lock()
        self._slow_ms = slow_ms
        self._sample_every = sample_every
        self._slow_seen = 0
        self._emitted = 0
        self._closed = False

    @property
    def emitted(self) -> int:
        """How many events have been written so far."""
        with self._lock:
            return self._emitted

    def emit(self, kind: str, **fields: object) -> None:
        """Append one event line; no-op after :meth:`close`.

        ``fields`` must be JSON-serializable and must not collide with
        the envelope keys (``schema``/``ts``/``kind``).
        """
        require(kind in EVENT_KINDS, f"unknown event kind: {kind!r}")
        for reserved in ("schema", "ts", "kind"):
            require(
                reserved not in fields,
                f"event field {reserved!r} is reserved",
            )
        record = {"schema": EVENTS_SCHEMA, "ts": time.time(), "kind": kind}
        record.update(fields)
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._closed:
                return
            self._stream.write(line + "\n")
            self._stream.flush()
            self._emitted += 1

    def observe_latency(self, wall_time_s: float, **fields: object) -> bool:
        """Emit a sampled ``service.slow_request`` if over threshold.

        Returns True when an event was written.  With no ``slow_ms``
        configured this is a no-op; otherwise every slow request is
        *counted* but only every ``sample_every``-th one is written.
        """
        if self._slow_ms is None:
            return False
        wall_ms = wall_time_s * 1000.0
        if wall_ms < self._slow_ms:
            return False
        with self._lock:
            self._slow_seen += 1
            sampled = (self._slow_seen - 1) % self._sample_every == 0
        if sampled:
            self.emit(
                "service.slow_request",
                wall_ms=wall_ms,
                threshold_ms=self._slow_ms,
                **fields,
            )
        return sampled

    def close(self) -> None:
        """Flush and (if this log opened its file) close the sink."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()


def validate_event(record: Mapping[str, object]) -> List[str]:
    """Schema problems in one ``repro.events/1`` record ([] = ok)."""
    problems: List[str] = []
    if record.get("schema") != EVENTS_SCHEMA:
        problems.append(
            f"schema is {record.get('schema')!r}, want {EVENTS_SCHEMA!r}"
        )
    kind = record.get("kind")
    if kind not in EVENT_KINDS:
        problems.append(f"unknown event kind: {kind!r}")
    ts = record.get("ts")
    if (
        not isinstance(ts, (int, float))
        or isinstance(ts, bool)
        or not math.isfinite(float(ts))
    ):
        problems.append("ts must be a finite number")
    return problems


def load_events(path: str) -> List[dict]:
    """Read and validate a ``repro.events/1`` JSONL file.

    Raises ``ValueError`` naming the first malformed line; blank lines
    are ignored (a crash mid-write can truncate the final line — that
    surfaces as a JSON error, deliberately, rather than silent loss).
    """
    events: List[dict] = []
    with open(path, "r", encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            problems = validate_event(record)
            if problems:
                raise ValueError(f"{path}:{lineno}: {problems[0]}")
            events.append(record)
    return events


def active_event_log() -> Optional[EventLog]:
    """The event log instrumented code should emit to, or None."""
    return _TLS.__dict__.get("events", _INSTALLED)


def install_event_log(log: Optional[EventLog]) -> Optional[EventLog]:
    """Install ``log`` as the process-wide default; returns the
    previous default."""
    global _INSTALLED
    previous = _INSTALLED
    _INSTALLED = log
    return previous


@contextmanager
def use_event_log(log: Optional[EventLog]) -> Iterator[Optional[EventLog]]:
    """Install ``log`` for the current thread's dynamic extent;
    ``use_event_log(None)`` masks any process-wide default."""
    previous = _TLS.__dict__.get("events", _UNSET)
    _TLS.events = log
    try:
        yield log
    finally:
        if previous is _UNSET:
            del _TLS.events
        else:
            _TLS.events = previous


def emit(kind: str, **fields: object) -> None:
    """Emit an event on the active log; no-op when logging is off (a
    single global read)."""
    log = _TLS.__dict__.get("events", _INSTALLED)
    if log is not None:
        log.emit(kind, **fields)
