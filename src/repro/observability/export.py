"""Telemetry export: periodic ``repro.metrics/1`` snapshots and
Prometheus-style text exposition.

A :class:`TelemetryExporter` owns a daemon thread that snapshots a
:class:`~repro.observability.metrics.MetricsRegistry` every
``interval_s`` seconds and appends the (schema-checked) snapshot as
one JSONL line.  The final snapshot is written unconditionally at
:meth:`stop`, so even a short-lived daemon leaves at least one line —
the CI smoke job asserts its counter identities.

The same snapshot dict renders to Prometheus text exposition with
:func:`render_prometheus`: dotted names become underscore-joined
``repro_``-prefixed families, histograms expand to cumulative
``_bucket``/``_sum``/``_count`` series per convention.

File-level helpers (:func:`load_metrics_file`,
:func:`summarize_metrics`, :func:`diff_metrics`) back the
``repro metrics`` CLI verb.
"""

from __future__ import annotations

import json
import threading
from typing import IO, Dict, List, Optional, Union

from repro.observability.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    validate_metrics,
)
from repro.utils.validation import require


class TelemetryExporter:
    """Background snapshot appender for one registry.

    ``sink`` is a path (opened for append) or an open text stream (the
    caller keeps ownership).  Snapshots are validated before writing —
    a schema bug fails loudly in the exporter thread's caller via
    :meth:`stop` rather than corrupting the output file.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        sink: Union[str, IO[str]],
        interval_s: float = 1.0,
    ) -> None:
        require(interval_s > 0, "interval_s must be > 0")
        self._registry = registry
        if isinstance(sink, str):
            self._stream: IO[str] = open(sink, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = sink
            self._owns_stream = False
        self._interval_s = interval_s
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._lines = 0

    @property
    def lines_written(self) -> int:
        with self._lock:
            return self._lines

    def write_snapshot(self) -> dict:
        """Snapshot, validate, and append one line immediately."""
        snapshot = self._registry.snapshot()
        problems = validate_metrics(snapshot)
        require(not problems, f"invalid metrics snapshot: {problems[:1]}")
        line = json.dumps(snapshot, sort_keys=True)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()
            self._lines += 1
        return snapshot

    def start(self) -> None:
        """Start the background thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-telemetry-exporter", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            self.write_snapshot()

    def stop(self) -> dict:
        """Stop the thread, write one final snapshot, close the sink.

        Returns the final snapshot so callers (the daemon's drain path)
        can log closing totals without re-reading the file.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        final = self.write_snapshot()
        if self._owns_stream:
            self._stream.close()
        return final


def _prometheus_name(name: str) -> str:
    return "repro_" + name.replace(".", "_")


def render_prometheus(snapshot: dict) -> str:
    """One ``repro.metrics/1`` snapshot as Prometheus text exposition.

    Counters render as ``counter`` families, gauges as ``gauge``,
    histograms as cumulative ``le``-labelled buckets plus ``_sum`` and
    ``_count`` — the conventional shape scrapers expect.  Families are
    emitted in sorted-name order so output is deterministic.
    """
    problems = validate_metrics(snapshot)
    require(not problems, f"invalid metrics snapshot: {problems[:1]}")
    out: List[str] = []
    for name in sorted(snapshot["counters"]):
        family = _prometheus_name(name)
        out.append(f"# TYPE {family} counter")
        out.append(f"{family} {snapshot['counters'][name]}")
    for name in sorted(snapshot["gauges"]):
        family = _prometheus_name(name)
        out.append(f"# TYPE {family} gauge")
        out.append(f"{family} {snapshot['gauges'][name]}")
    for name in sorted(snapshot["histograms"]):
        spec = snapshot["histograms"][name]
        family = _prometheus_name(name)
        out.append(f"# TYPE {family} histogram")
        cumulative = 0
        for bound, bucket in zip(spec["boundaries"], spec["buckets"]):
            cumulative += bucket
            out.append(f'{family}_bucket{{le="{bound}"}} {cumulative}')
        cumulative += spec["buckets"][-1]
        out.append(f'{family}_bucket{{le="+Inf"}} {cumulative}')
        out.append(f"{family}_sum {spec['sum']}")
        out.append(f"{family}_count {spec['count']}")
    return "\n".join(out) + "\n"


def load_metrics_file(path: str) -> List[dict]:
    """Read and validate a JSONL file of ``repro.metrics/1`` lines.

    Raises ``ValueError`` naming the first offending line.  Every line
    must carry the expected schema tag — a file whose lines answer
    ``schema == "repro.events/1"`` is a different artifact and is
    rejected here rather than half-parsed.
    """
    snapshots: List[dict] = []
    with open(path, "r", encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if record.get("schema") != METRICS_SCHEMA:
                raise ValueError(
                    f"{path}:{lineno}: schema is {record.get('schema')!r},"
                    f" want {METRICS_SCHEMA!r}"
                )
            problems = validate_metrics(record)
            if problems:
                raise ValueError(f"{path}:{lineno}: {problems[0]}")
            snapshots.append(record)
    if not snapshots:
        raise ValueError(f"{path}: no metrics snapshots")
    return snapshots


def summarize_metrics(snapshots: List[dict]) -> str:
    """Human-readable summary of a snapshot series (final line wins).

    Counters are cumulative so the last snapshot carries the totals;
    the summary reports those plus the series length and time span.
    """
    require(len(snapshots) > 0, "no snapshots to summarize")
    last = snapshots[-1]
    span_s = last["ts"] - snapshots[0]["ts"] if len(snapshots) > 1 else 0.0
    out = [
        f"snapshots: {len(snapshots)}   span: {span_s:.1f}s"
        f"   uptime: {last['uptime_s']:.1f}s",
    ]
    if last["counters"]:
        out.append("counters:")
        for name in sorted(last["counters"]):
            out.append(f"  {name:<40} {last['counters'][name]}")
    if last["gauges"]:
        out.append("gauges:")
        for name in sorted(last["gauges"]):
            out.append(f"  {name:<40} {last['gauges'][name]}")
    for name in sorted(last["histograms"]):
        spec = last["histograms"][name]
        mean = spec["sum"] / spec["count"] if spec["count"] else 0.0
        out.append(
            f"histogram {name}: count={spec['count']} mean={mean:.3f}"
        )
    return "\n".join(out)


def diff_metrics(before: dict, after: dict) -> Dict[str, int]:
    """Counter movement between two snapshots (monotonic deltas).

    Returns ``{name: after - before}`` for every counter present in
    either snapshot; raises ``ValueError`` if any counter moved
    backwards (which would mean the snapshots come from different
    registry lifetimes and the diff is meaningless).
    """
    for snapshot in (before, after):
        problems = validate_metrics(snapshot)
        require(not problems, f"invalid metrics snapshot: {problems[:1]}")
    deltas: Dict[str, int] = {}
    names = set(before["counters"]) | set(after["counters"])
    for name in sorted(names):
        delta = after["counters"].get(name, 0) - before["counters"].get(name, 0)
        if delta < 0:
            raise ValueError(
                f"counter {name!r} moved backwards ({-delta}); snapshots"
                " are from different registry lifetimes"
            )
        deltas[name] = delta
    return deltas
