"""JSONL persistence for traces (schema ``repro.trace/1``).

File layout — one JSON object per line:

* line 1, the header::

      {"schema": "repro.trace/1", "meta": {...}}

  ``meta`` is a free-form dict describing how the trace was produced
  (grid, mode, workers, ...).

* every further line, one span record::

      {"id": int, "parent": int | null, "name": str,
       "start_s": float, "duration_s": float,
       "counters": {str: int}, "attrs": {...}?}

Invariants enforced by :func:`validate_trace` (and therefore by both
:func:`write_trace` and :func:`load_trace`):

* ids are unique non-negative integers;
* a ``parent`` is either null (a subtree root) or an id that appeared
  on an *earlier* line — the file is topologically sorted, so a single
  forward pass can rebuild the tree;
* times are non-negative finite numbers; counter values are ints.

``start_s`` offsets are relative to the producing tracer's origin; in
a merged parallel sweep each task subtree keeps its worker-local clock
(durations, which is what the reports aggregate, are always
comparable).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.utils.validation import ValidationError, require

SCHEMA = "repro.trace/1"

PathLike = Union[str, Path]


@dataclass(frozen=True)
class Trace:
    """A loaded trace file: header meta + topologically sorted spans."""

    meta: Dict[str, Any] = field(default_factory=dict)
    records: List[dict] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.records)

    def roots(self) -> List[dict]:
        return [r for r in self.records if r["parent"] is None]

    def children_of(self, span_id: Optional[int]) -> List[dict]:
        return [r for r in self.records if r["parent"] == span_id]


def _check_number(value: object, where: str) -> None:
    ok = (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
        and value >= 0
    )
    require(ok, f"{where} must be a finite non-negative number, got {value!r}")


def validate_trace(records: Sequence[dict],
                   meta: Optional[Dict[str, Any]] = None) -> None:
    """Raise :class:`ValidationError` unless the records fit the schema."""
    if meta is not None:
        require(isinstance(meta, dict), "trace meta must be a dict")
    seen: set = set()
    for position, record in enumerate(records):
        where = f"trace[{position}]"
        require(isinstance(record, dict), f"{where} must be a dict")
        for name in ("id", "parent", "name", "start_s", "duration_s",
                     "counters"):
            require(name in record, f"{where}: missing field {name!r}")
        span_id = record["id"]
        require(
            isinstance(span_id, int) and not isinstance(span_id, bool)
            and span_id >= 0,
            f"{where}.id must be a non-negative int, got {span_id!r}",
        )
        require(span_id not in seen, f"{where}.id {span_id} is duplicated")
        parent = record["parent"]
        require(
            parent is None
            or (isinstance(parent, int) and not isinstance(parent, bool)),
            f"{where}.parent must be null or an int",
        )
        if parent is not None:
            require(
                parent in seen,
                f"{where}.parent {parent} does not precede the span "
                "(traces must be topologically sorted)",
            )
        seen.add(span_id)
        require(
            isinstance(record["name"], str) and record["name"],
            f"{where}.name must be a non-empty string",
        )
        _check_number(record["start_s"], f"{where}.start_s")
        _check_number(record["duration_s"], f"{where}.duration_s")
        counters = record["counters"]
        require(isinstance(counters, dict), f"{where}.counters must be a dict")
        for key, value in counters.items():
            require(isinstance(key, str), f"{where}.counters keys must be str")
            require(
                isinstance(value, int) and not isinstance(value, bool),
                f"{where}.counters[{key!r}] must be an int, got {value!r}",
            )
        if "attrs" in record:
            require(
                isinstance(record["attrs"], dict),
                f"{where}.attrs must be a dict",
            )


def write_trace(records: Sequence[dict], path: PathLike,
                meta: Optional[Dict[str, Any]] = None) -> Path:
    """Validate and write a trace as JSONL; returns the path."""
    validate_trace(records, meta)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        handle.write(json.dumps(
            {"schema": SCHEMA, "meta": dict(meta or {})}, sort_keys=True
        ))
        handle.write("\n")
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return target


def load_trace(path: PathLike) -> Trace:
    """Read and validate a previously written trace file."""
    lines = Path(path).read_text().splitlines()
    require(bool(lines), "trace file is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValidationError(f"trace header is not JSON: {exc}") from exc
    require(isinstance(header, dict), "trace header must be a JSON object")
    require(
        header.get("schema") == SCHEMA,
        f"trace schema must be {SCHEMA!r}, got {header.get('schema')!r}",
    )
    meta = header.get("meta", {})
    records = []
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"trace line {number} is not JSON: {exc}"
            ) from exc
    validate_trace(records, meta)
    return Trace(meta=meta, records=records)
