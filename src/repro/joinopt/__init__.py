"""QO_N substrate: nested-loops join ordering (paper Section 2.1).

An instance is ``(n, Q=(V,E), S, T, W)``: a query graph, a symmetric
selectivity matrix, relation sizes and an access-path cost matrix.  A
plan is a permutation of the relations (a *join sequence*), executed
left-deep with nested-loops joins; its cost is the paper's
``C(Z) = sum_i H_i(Z)`` with ``H_i(Z) = N(X) * min_{k in X} w_{k j}``.

Modules:

* :mod:`repro.joinopt.instance` — the instance model with the paper's
  ``t_j s_ij <= w_ij <= t_j`` access-path bounds enforced;
* :mod:`repro.joinopt.cost` — N(X), H_i, C(Z), back-edge/prefix-edge
  statistics (B_i, D_i);
* :mod:`repro.joinopt.optimizers` — exact (exhaustive, subset DP) and
  polynomial-time heuristic (greedy, IKKBZ, iterative improvement,
  simulated annealing, random sampling) optimizers.
"""

from repro.joinopt.instance import QONInstance
from repro.joinopt.cost import (
    back_edge_counts,
    has_cartesian_product,
    intermediate_sizes,
    join_costs,
    prefix_edge_counts,
    total_cost,
)
from repro.joinopt.bounds import (
    dominance_lower_bound,
    first_join_lower_bound,
    lemma8_style_lower_bound,
)
from repro.joinopt.optimizers import (
    PlanResult,
    branch_and_bound,
    dp_optimal,
    exhaustive_optimal,
    genetic_algorithm,
    greedy_min_cost,
    greedy_min_size,
    ikkbz,
    iterative_improvement,
    random_sampling,
    simulated_annealing,
)


def __getattr__(name: str) -> type:
    # Deprecated alias kept importable (lazily, so internal code
    # cannot pick it up by accident; see lint rule RPR003).
    if name == "OptimizerResult":
        from repro.core.results import deprecated_alias

        return deprecated_alias(name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "QONInstance",
    "back_edge_counts",
    "has_cartesian_product",
    "intermediate_sizes",
    "join_costs",
    "prefix_edge_counts",
    "total_cost",
    "dominance_lower_bound",
    "first_join_lower_bound",
    "lemma8_style_lower_bound",
    "OptimizerResult",
    "PlanResult",
    "branch_and_bound",
    "dp_optimal",
    "exhaustive_optimal",
    "genetic_algorithm",
    "greedy_min_cost",
    "greedy_min_size",
    "ikkbz",
    "iterative_improvement",
    "random_sampling",
    "simulated_annealing",
]
