"""The QO_N instance model (paper Section 2.1.1).

An instance is a five-tuple ``(n, Q=(V,E), S, T, W)``:

* ``Q`` — undirected query graph; an edge means a join predicate;
* ``S`` — symmetric selectivities ``s_ij`` (1 for non-edges);
* ``T`` — relation sizes ``t_1 .. t_n`` in tuples (= pages, the paper
  fixes tuple size at one page);
* ``W`` — access-path costs: ``w_ij`` is the least cost of probing
  relation ``R_j`` given one tuple carrying join attributes of ``R_i``.
  The paper constrains ``t_j * s_ij <= w_ij <= t_j`` for edges and
  forces ``w_ij = t_j`` for non-edges (every tuple of ``R_j``
  qualifies, so a full scan is unavoidable).

Index-orientation note: the paper writes ``H_i(Z) = N(X) min_{v_k in X}
w_{jk}`` for incoming relation ``R_j``, while its own constraint set
(``w_ij in [t_j s_ij, t_j]``, "all tuples of R_j accessed once")
defines ``w_ij`` as the probe cost *into* ``R_j``.  We follow the
constraint semantics: the cost of bringing ``R_j`` into a prefix ``X``
uses ``min_{k in X} w[k][j]``.  Under the paper's reduction (uniform
``w`` on edges, ``t`` off edges) both readings give identical costs.

Numeric genericity: sizes, selectivities and access costs may be
``int``, ``Fraction`` or :class:`~repro.utils.lognum.LogNumber`; the
cost functions only use ``*``, ``+`` and comparisons.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.graphs.graph import Graph
from repro.utils.lognum import LogNumber
from repro.utils.validation import ValidationError, check_index, require

EdgeKey = Tuple[int, int]


def _edge_key(i: int, j: int) -> EdgeKey:
    return (i, j) if i < j else (j, i)


class QONInstance:
    """A QO_N problem instance.

    Args:
        graph: the query graph on vertices ``0 .. n-1``.
        sizes: relation sizes ``t_0 .. t_{n-1}``.
        selectivities: mapping ``(i, j) -> s_ij`` for each edge of the
            graph (either orientation accepted; missing edges raise).
        access_costs: optional mapping ``(i, j) -> w_ij`` (ordered
            pairs; ``w_ij`` is the probe cost into ``R_j``).  Defaults
            to the paper's lower bound ``t_j * s_ij`` on edges.
        validate: skip bound checking when False (used by the
            LogNumber sweeps, where exact comparisons are meaningless).
    """

    # __weakref__ so caches can memoize per live instance without
    # pinning it (see repro.runtime.costcache / repro.perf.kernels).
    __slots__ = (
        "_graph", "_sizes", "_selectivities", "_access_costs", "__weakref__",
    )

    def __init__(
        self,
        graph: Graph,
        sizes: Sequence,
        selectivities: Mapping[EdgeKey, object],
        access_costs: Optional[Mapping[EdgeKey, object]] = None,
        validate: bool = True,
    ) -> None:
        n = graph.num_vertices
        require(len(sizes) == n, f"need {n} sizes, got {len(sizes)}")
        self._graph = graph
        self._sizes = tuple(sizes)

        normalized: Dict[EdgeKey, object] = {}
        for (i, j), value in selectivities.items():
            check_index(i, n, "selectivity index")
            check_index(j, n, "selectivity index")
            require(graph.has_edge(i, j), f"selectivity on non-edge ({i},{j})")
            key = _edge_key(i, j)
            if key in normalized and normalized[key] != value:
                raise ValidationError(
                    f"conflicting selectivities for edge {key}"
                )
            normalized[key] = value
        for edge in graph.edges:
            require(edge in normalized, f"missing selectivity for edge {edge}")
        self._selectivities = normalized

        costs: Dict[Tuple[int, int], object] = {}
        if access_costs is not None:
            for (i, j), value in access_costs.items():
                check_index(i, n, "access-cost index")
                check_index(j, n, "access-cost index")
                require(i != j, "access cost requires distinct relations")
                costs[(i, j)] = value
        # Fill defaults for edges: the lower bound t_j * s_ij.
        for i, j in graph.edges:
            for a, b in ((i, j), (j, i)):
                if (a, b) not in costs:
                    costs[(a, b)] = self._sizes[b] * self.selectivity(a, b)
        self._access_costs = costs

        if validate:
            self._validate()

    def _validate(self) -> None:
        n = self.num_relations
        for t_index, t in enumerate(self._sizes):
            require(t > 0, f"relation size t_{t_index} must be positive")
        for key, s in self._selectivities.items():
            require(0 < s <= 1, f"selectivity {key} must lie in (0, 1]")
        for (i, j), w in self._access_costs.items():
            t_j = self._sizes[j]
            if self._graph.has_edge(i, j):
                lower = t_j * self.selectivity(i, j)
                require(
                    lower <= w <= t_j,
                    f"w[{i}][{j}]={w!r} violates [{lower!r}, {t_j!r}]",
                )

    # -- accessors ---------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def num_relations(self) -> int:
        return self._graph.num_vertices

    @property
    def sizes(self) -> Tuple:
        return self._sizes

    def size(self, relation: int) -> object:
        """t_j, the number of tuples (= pages) of relation j."""
        return self._sizes[relation]

    def selectivity(self, i: int, j: int) -> object:
        """s_ij; 1 when there is no predicate between R_i and R_j."""
        if not self._graph.has_edge(i, j):
            return 1
        return self._selectivities[_edge_key(i, j)]

    def access_cost(self, i: int, j: int) -> object:
        """w_ij: least cost of probing R_j given one tuple of R_i.

        For non-edges this is ``t_j`` (all tuples of R_j qualify).
        """
        require(i != j, "access cost requires distinct relations")
        if not self._graph.has_edge(i, j):
            return self._sizes[j]
        return self._access_costs[(i, j)]

    def __repr__(self) -> str:
        return (
            f"QONInstance(n={self.num_relations}, "
            f"m={self._graph.num_edges})"
        )

    # -- conversions -------------------------------------------------
    def to_log_domain(self) -> "QONInstance":
        """The same instance with every numeric field as LogNumber.

        Exact ``Fraction``/``int`` magnitudes become log2 floats —
        orders of magnitude faster for large sweeps at the price of
        float precision (~15 significant digits in the exponent).
        """
        return QONInstance(
            self._graph,
            [LogNumber(t) for t in self._sizes],
            {key: LogNumber(s) for key, s in self._selectivities.items()},
            {key: LogNumber(w) for key, w in self._access_costs.items()},
            validate=False,
        )
