"""Human-readable execution plans for QO_N sequences.

``explain`` renders a left-deep join sequence the way a database
EXPLAIN would: one line per join operator with the probe choice, the
estimated intermediate cardinality and the operator cost — all straight
from the paper's cost model, so the printout doubles as a worked
example of the formulas.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.joinopt.cost import (
    back_edge_counts,
    check_sequence,
    intermediate_sizes,
    join_costs,
    total_cost,
)
from repro.joinopt.instance import QONInstance
from repro.utils.lognum import Numeric, log2_of


def _format_number(value: Numeric) -> str:
    """Exact rendering for small numbers, log2 form for huge ones."""
    try:
        log2 = log2_of(value)
    except (TypeError, ValueError):
        return str(value)
    if log2 < 40:
        return str(value)
    return f"2^{log2:.1f}"


def probe_choices(instance: QONInstance, sequence: Sequence[int]) -> List[int]:
    """For each join, the prefix relation whose predicate drives the
    probe (the argmin of the paper's ``min_{k in X} w[k][j]``)."""
    check_sequence(instance, sequence)
    choices: List[int] = []
    for position in range(1, len(sequence)):
        incoming = sequence[position]
        best = min(
            sequence[:position],
            key=lambda earlier: (instance.access_cost(earlier, incoming), earlier),
        )
        choices.append(best)
    return choices


def explain(
    instance: QONInstance,
    sequence: Sequence[int],
    relation_names: Sequence[str] | None = None,
) -> str:
    """Render a join sequence as a textual execution plan."""
    check_sequence(instance, sequence)
    if relation_names is None:
        relation_names = [f"R{r}" for r in range(instance.num_relations)]

    sizes = intermediate_sizes(instance, sequence)
    costs = join_costs(instance, sequence)
    back = back_edge_counts(instance, sequence)
    probes = probe_choices(instance, sequence)

    lines = [
        f"scan {relation_names[sequence[0]]}"
        f"  (cardinality {_format_number(instance.size(sequence[0]))})"
    ]
    for index in range(1, len(sequence)):
        incoming = sequence[index]
        join_kind = (
            "nested-loops join" if back[index] > 0 else "CARTESIAN product"
        )
        probe = probes[index - 1]
        lines.append(
            f"{join_kind} {relation_names[incoming]}"
            f"  via {relation_names[probe]}"
            f"  (w = {_format_number(instance.access_cost(probe, incoming))},"
            f" H_{index} = {_format_number(costs[index - 1])},"
            f" |out| = {_format_number(sizes[index - 1])})"
        )
    lines.append(f"total cost C(Z) = {_format_number(total_cost(instance, sequence))}")
    return "\n".join(lines)
