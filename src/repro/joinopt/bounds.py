"""Cost lower bounds for QO_N instances.

Sound bounds that hold for *every* join sequence, used to certify
NO-side costs at sizes where exhaustive/DP search is infeasible:

* :func:`first_join_lower_bound` — the first join alone costs at least
  ``min_i t_i * min_{k != i} w[k][i]``;
* :func:`lemma8_style_lower_bound` — the paper's argument generalized
  to any *uniform* f_N-style instance: at prefix length ``p`` the join
  cost is ``w * alpha^{(sum of size exponents) - D_p}``, and Lemma 7
  caps ``D_p`` given a clique bound on the query graph;
* :func:`dominance_lower_bound` — for arbitrary instances, a weaker
  product bound: every sequence must, at some point, pay
  ``N(prefix) * cheapest probe``, and ``N(prefix)`` for the first
  ``p`` relations is at least the product of the ``p`` smallest sizes
  times all pairwise selectivities among them.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import TYPE_CHECKING, List, Optional

from repro.graphs.properties import lemma7_edge_bound
from repro.joinopt.instance import QONInstance
from repro.utils.validation import require

if TYPE_CHECKING:  # avoid a circular import: core builds on joinopt
    from repro.core.reductions.clique_to_qon import FNReduction


def first_join_lower_bound(instance: QONInstance) -> Optional[Fraction]:
    """Every sequence's very first join costs at least this."""
    n = instance.num_relations
    require(n >= 2, "need at least two relations")
    best = None
    for outer in range(n):
        for inner in range(n):
            if inner == outer:
                continue
            cost = instance.size(outer) * instance.access_cost(outer, inner)
            if best is None or cost < best:
                best = cost
    return best


def dominance_lower_bound(
    instance: QONInstance, prefix_length: int
) -> Fraction:
    """A floor on H at position ``prefix_length`` over all sequences.

    ``N(X)`` for any ``p`` relations is at least the product of the
    ``p`` smallest sizes times the product of the ``p(p-1)/2`` smallest
    selectivities in the whole instance; the probe is at least the
    globally cheapest access cost.  Sound but loose on heterogeneous
    instances; tight on the uniform reduction instances.
    """
    n = instance.num_relations
    p = prefix_length
    require(2 <= p <= n - 1, "prefix length must lie in [2, n-1]")
    sizes = sorted((instance.size(r) for r in range(n)))[:p]
    selectivities = sorted(
        instance.selectivity(i, j)
        for i, j in itertools.combinations(range(n), 2)
    )[: p * (p - 1) // 2]
    probes = [
        instance.access_cost(i, j)
        for i in range(n)
        for j in range(n)
        if i != j
    ]
    size_product = Fraction(1)
    for value in sizes:
        size_product *= value
    for value in selectivities:
        size_product *= value
    return size_product * min(probes)


def lemma8_style_lower_bound(
    reduction: "FNReduction", clique_bound: int
) -> int:
    """Lemma 8 for any clique-bounded f_N instance, computed exactly.

    If ``omega(query graph) <= clique_bound``, then for every sequence
    the prefix of length ``p = (k_yes + k_no) / 2`` has at most
    ``p(p-1)/2 - p + clique_bound`` internal edges (Lemma 7), so

        C(Z) >= H_p >= w * alpha^{p * (k_yes+k_no)/2 - D_p}.

    Returns the exact integer bound.
    """
    alpha = reduction.alpha
    w = reduction.edge_access_cost
    p = (reduction.k_yes + reduction.k_no) // 2
    require(p >= 2, "the bound needs a prefix of at least two relations")
    require(
        clique_bound >= 1, "clique bound must be positive"
    )
    d_cap = lemma7_edge_bound(p, min(clique_bound, p))
    exponent = p * p - d_cap
    require(exponent >= 0, "degenerate parameters: bound collapses")
    return w * alpha**exponent


def verify_no_instance_floor(
    reduction: "FNReduction", clique_bound: int
) -> bool:
    """Check Lemma 8's floor >= the K * alpha^{dn/2-1} formula.

    When the reduction's ``k_no`` equals the true clique bound the two
    agree; a looser ``clique_bound`` weakens the floor monotonically.
    """
    floor = lemma8_style_lower_bound(reduction, clique_bound)
    if clique_bound > reduction.k_no:
        return True  # formula floor does not apply
    return floor >= reduction.no_cost_lower_bound()
