"""The QO_N cost model (paper Section 2.1.2).

For a join sequence ``Z = (z_1 .. z_n)`` (a permutation of relations):

* ``N(X)`` — estimated tuple count of the prefix join ``X``:
  ``N(empty) = 1``, ``N(X v_j) = N(X) * t_j * prod_{v_i in X} s_ij``;
* ``H_i(Z) = N(X) * min_{k in X} w[k][z_{i+1}]`` — nested-loops cost
  of the i-th join (see the index-orientation note in
  :mod:`repro.joinopt.instance`);
* ``C(Z) = sum_{i=1}^{n-1} H_i(Z)``.

Also computes the proof-side statistics: ``B_i`` (back-edges of the
vertex in position i) and ``D_i`` (edges within the first i vertices),
used by Lemmas 5–8.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.joinopt.instance import QONInstance
from repro.observability.tracer import count as trace_count
from repro.runtime.costcache import active_cache
from repro.utils.validation import require

JoinSequence = Sequence[int]


def check_sequence(instance: QONInstance, sequence: JoinSequence) -> None:
    """Require ``sequence`` to be a permutation of the relations."""
    n = instance.num_relations
    require(
        len(sequence) == n and sorted(sequence) == list(range(n)),
        f"join sequence must be a permutation of range({n})",
    )


def intermediate_sizes(instance: QONInstance, sequence: JoinSequence) -> List:
    """``[N_1 .. N_{n-1}]``: N_i is the output size of join J_i.

    ``N_i`` is ``N`` of the first ``i + 1`` relations of the sequence.
    """
    check_sequence(instance, sequence)
    sizes: List = []
    current = instance.size(sequence[0])
    for position in range(1, len(sequence)):
        incoming = sequence[position]
        current = current * instance.size(incoming)
        for earlier in sequence[:position]:
            selectivity = instance.selectivity(earlier, incoming)
            if selectivity != 1:
                current = current * selectivity
        sizes.append(current)
    return sizes


def join_costs(instance: QONInstance, sequence: JoinSequence) -> List:
    """``[H_1 .. H_{n-1}]``: per-join nested-loops costs."""
    check_sequence(instance, sequence)
    costs: List = []
    prefix_size = instance.size(sequence[0])
    for position in range(1, len(sequence)):
        incoming = sequence[position]
        probe = min(
            instance.access_cost(earlier, incoming)
            for earlier in sequence[:position]
        )
        costs.append(prefix_size * probe)
        prefix_size = prefix_size * instance.size(incoming)
        for earlier in sequence[:position]:
            selectivity = instance.selectivity(earlier, incoming)
            if selectivity != 1:
                prefix_size = prefix_size * selectivity
    return costs


def _total_cost_uncached(
    instance: QONInstance, sequence: JoinSequence
) -> object:
    costs = join_costs(instance, sequence)
    total = costs[0]
    for cost in costs[1:]:
        total = total + cost
    return total


def total_cost(instance: QONInstance, sequence: JoinSequence) -> object:
    """``C(Z)``, the sum of the join costs.

    Consults the active :class:`~repro.runtime.costcache.CostCache`
    (if any) keyed on the full sequence — the metaheuristics revisit
    the same permutations constantly, and a cached value is returned
    exactly as the miss path computed it, so results are bit-identical
    with and without the cache.
    """
    cache = active_cache()
    if cache is None:
        # Counted under a distinct key: sweep runs always have a cache
        # (pass-through at minimum), so "cost_evaluations" stays exactly
        # the cache-miss count the metrics layer reports.
        trace_count("cost_evaluations_uncached")
        return _total_cost_uncached(instance, sequence)
    key = tuple(sequence)
    return cache.get_or_compute(
        instance, "qon-cost", key,
        lambda: _total_cost_uncached(instance, key),
    )


def partial_costs(instance: QONInstance, sequence: JoinSequence) -> Tuple[List, List]:
    """Both ``join_costs`` and ``intermediate_sizes`` in one pass.

    One validation and one prefix walk: ``H_i`` is taken before the
    prefix size is extended to ``N_i``, in the same operation order as
    the two single-purpose functions, so the lists are identical to
    calling them separately.
    """
    check_sequence(instance, sequence)
    costs: List = []
    sizes: List = []
    prefix_size = instance.size(sequence[0])
    for position in range(1, len(sequence)):
        incoming = sequence[position]
        probe = min(
            instance.access_cost(earlier, incoming)
            for earlier in sequence[:position]
        )
        costs.append(prefix_size * probe)
        prefix_size = prefix_size * instance.size(incoming)
        for earlier in sequence[:position]:
            selectivity = instance.selectivity(earlier, incoming)
            if selectivity != 1:
                prefix_size = prefix_size * selectivity
        sizes.append(prefix_size)
    return costs, sizes


def back_edge_counts(instance: QONInstance, sequence: JoinSequence) -> List[int]:
    """``[B_1 .. B_n]``: B_i = query-graph edges from the vertex in
    position i back to positions before i (B_1 = 0)."""
    check_sequence(instance, sequence)
    graph = instance.graph
    counts: List[int] = []
    for position, vertex in enumerate(sequence):
        back = sum(
            1 for earlier in sequence[:position] if graph.has_edge(earlier, vertex)
        )
        counts.append(back)
    return counts


def prefix_edge_counts(instance: QONInstance, sequence: JoinSequence) -> List[int]:
    """``[D_1 .. D_n]``: D_i = edges within the first i vertices."""
    back = back_edge_counts(instance, sequence)
    totals: List[int] = []
    running = 0
    for count in back:
        running += count
        totals.append(running)
    return totals


def has_cartesian_product(instance: QONInstance, sequence: JoinSequence) -> bool:
    """True if some join (beyond the first relation) has no predicate
    connecting it to the prefix (i.e. B_i = 0 for some i >= 2)."""
    back = back_edge_counts(instance, sequence)
    return any(count == 0 for count in back[1:])
