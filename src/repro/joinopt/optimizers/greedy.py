"""Greedy join-ordering heuristics.

Two classic polynomial-time greedies:

* :func:`greedy_min_cost` — at each step append the relation whose
  join is cheapest right now (minimum ``H`` increment);
* :func:`greedy_min_size` — at each step append the relation that
  minimizes the resulting intermediate size ``N`` (GOO-style).

Each rollout maintains, per remaining candidate, the cheapest probe
cost and the accumulated selectivity product incrementally, so one
rollout is ``O(n^2)``.  Both optimizers try several starting relations
(all of them up to ``max_full_starts`` relations, a capped sample
beyond that) and keep the best sequence found.

These are exactly the kind of algorithms whose competitive ratio
Theorem 9 lower-bounds; the benchmark harness drives them across the
gap families.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.joinopt.cost import total_cost
from repro.joinopt.instance import QONInstance
from repro.core.results import PlanResult
from repro.utils.validation import require
from repro.observability.tracer import traced


def _greedy_from(
    instance: QONInstance,
    first: int,
    prefer_size: bool,
    allow_cartesian: bool,
) -> Tuple[Optional[Tuple[int, ...]], int]:
    """One greedy rollout starting from ``first``.

    Returns ``(sequence, examined)`` where ``examined`` counts the
    candidate partial plans evaluated; the sequence is None if stuck.

    Incremental state per remaining candidate c:
      * probe[c]   = min over joined k of w[k][c];
      * selprod[c] = product over joined k of s(k, c);
      * connected[c] = candidate has an edge into the prefix.
    """
    n = instance.num_relations
    graph = instance.graph
    sequence = [first]
    examined = 0
    remaining = [v for v in range(n) if v != first]
    probe = {}
    selprod = {}
    connected = {}
    for candidate in remaining:
        probe[candidate] = instance.access_cost(first, candidate)
        selprod[candidate] = instance.selectivity(first, candidate)
        connected[candidate] = graph.has_edge(first, candidate)

    prefix_size = instance.size(first)
    while remaining:
        best_candidate = None
        best_key = None
        best_size = None
        for candidate in remaining:
            if not allow_cartesian and not connected[candidate]:
                # If no connected candidate exists at all this rollout
                # fails; the caller then retries with products allowed.
                continue
            examined += 1
            new_size = prefix_size * instance.size(candidate)
            selectivity = selprod[candidate]
            if selectivity != 1:
                new_size = new_size * selectivity
            key = new_size if prefer_size else prefix_size * probe[candidate]
            if best_key is None or key < best_key:
                best_key = key
                best_candidate = candidate
                best_size = new_size
        if best_candidate is None:
            return None, examined
        sequence.append(best_candidate)
        remaining.remove(best_candidate)
        prefix_size = best_size
        for candidate in remaining:
            cost = instance.access_cost(best_candidate, candidate)
            if cost < probe[candidate]:
                probe[candidate] = cost
            selectivity = instance.selectivity(best_candidate, candidate)
            if selectivity != 1:
                selprod[candidate] = selprod[candidate] * selectivity
            if not connected[candidate] and graph.has_edge(
                best_candidate, candidate
            ):
                connected[candidate] = True
    return tuple(sequence), examined


def _starting_relations(instance: QONInstance, max_full_starts: int) -> List[int]:
    """All relations for small instances, a spread sample otherwise."""
    n = instance.num_relations
    if n <= max_full_starts:
        return list(range(n))
    # Prefer small relations (cheap outers) plus an even spread.
    by_size = sorted(range(n), key=lambda v: (instance.size(v), v))
    picks = by_size[: max_full_starts // 2]
    stride = max(1, n // (max_full_starts - len(picks)))
    picks.extend(range(0, n, stride))
    return sorted(set(picks))[:max_full_starts]


def _greedy(
    instance: QONInstance,
    prefer_size: bool,
    allow_cartesian: bool,
    name: str,
    max_full_starts: int,
) -> PlanResult:
    n = instance.num_relations
    require(n >= 1, "instance must have at least one relation")
    if n == 1:
        return PlanResult(cost=0, sequence=(0,), optimizer=name, explored=1)
    best_cost = None
    best_sequence: Optional[Tuple[int, ...]] = None
    # explored counts candidate partial plans examined across rollouts,
    # so the work metric reflects the O(n^2)-per-rollout enumeration.
    explored = 0
    for first in _starting_relations(instance, max_full_starts):
        sequence, examined = _greedy_from(
            instance, first, prefer_size, allow_cartesian
        )
        explored += examined
        if sequence is None:
            continue
        explored += 1
        cost = total_cost(instance, sequence)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_sequence = sequence
    if best_sequence is None:
        # No cartesian-free sequence from any start (disconnected graph).
        return _greedy(instance, prefer_size, True, name, max_full_starts)
    return PlanResult(
        cost=best_cost,
        sequence=best_sequence,
        optimizer=name,
        explored=explored,
    )


@traced("optimize.greedy_min_cost")
def greedy_min_cost(
    instance: QONInstance,
    allow_cartesian: bool = False,
    max_full_starts: int = 24,
) -> PlanResult:
    """Greedy by cheapest next join, best over the tried starts."""
    return _greedy(
        instance, False, allow_cartesian, "greedy-min-cost", max_full_starts
    )


@traced("optimize.greedy_min_size")
def greedy_min_size(
    instance: QONInstance,
    allow_cartesian: bool = False,
    max_full_starts: int = 24,
) -> PlanResult:
    """Greedy by smallest next intermediate, best over the tried starts."""
    return _greedy(
        instance, True, allow_cartesian, "greedy-min-size", max_full_starts
    )
