"""Randomized search: iterative improvement and random sampling.

Classic join-ordering metaheuristics (Swami & Gupta; Ioannidis & Kang)
adapted to sequence space: the neighborhood is adjacent swaps plus
arbitrary single-relation moves.  These are the practical algorithms
whose worst-case competitive ratio the paper proves cannot be
polylogarithmic.

Cost evaluation flows through :class:`~repro.perf.incremental.
PrefixEvaluator`: neighbors of the current sequence are re-costed from
checkpointed prefix state (O(n) per candidate instead of O(n^2)), with
results bit-identical to :func:`~repro.joinopt.cost.total_cost` and the
same cache/trace accounting.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.joinopt.instance import QONInstance
from repro.core.results import PlanResult
from repro.perf.incremental import PrefixEvaluator, sample_moves
from repro.utils.rng import Random, RngLike, make_rng
from repro.utils.validation import require
from repro.observability.tracer import traced


def _random_connected_sequence(
    instance: QONInstance, rng: Random
) -> Tuple[int, ...]:
    """A random permutation avoiding cartesian products when possible.

    Tracks the frontier incrementally, so one draw is O(n + m).
    """
    n = instance.num_relations
    graph = instance.graph
    first = rng.randrange(n)
    sequence = [first]
    remaining = set(range(n)) - {first}
    frontier = {v for v in graph.neighbors(first) if v in remaining}
    while remaining:
        pool = sorted(frontier) if frontier else sorted(remaining)
        choice = rng.choice(pool)
        sequence.append(choice)
        remaining.remove(choice)
        frontier.discard(choice)
        for neighbor in graph.neighbors(choice):
            if neighbor in remaining:
                frontier.add(neighbor)
    return tuple(sequence)


def _neighbors(
    sequence: Tuple[int, ...], rng: Random, count: int
) -> List[Tuple[int, ...]]:
    """Sample ``count`` distinct-from-``sequence`` neighbors.

    Thin wrapper over :func:`~repro.perf.incremental.sample_moves`; kept
    for callers that want materialized sequences rather than moves.  The
    move branch redraws the target index when it equals the source, so
    no-op "neighbors" (which used to inflate ``explored``) cannot occur.
    """
    base = tuple(sequence)
    return [
        move.apply(base) for move in sample_moves(len(base), rng, count)
    ]


@traced("optimize.iterative")
def iterative_improvement(
    instance: QONInstance,
    restarts: int = 10,
    neighborhood_samples: int = 30,
    max_rounds: int = 200,
    rng: RngLike = None,
) -> PlanResult:
    """Iterative improvement from random starts.

    Each restart descends by sampled neighborhood moves until no
    sampled neighbor improves for a full round.  Neighbor costs come
    from the incremental evaluator; ``explored`` counts evaluated
    candidates exactly as the reference loop did (first-improvement
    stops the round, so later samples are never costed or counted).
    """
    n = instance.num_relations
    require(n >= 1, "instance must have at least one relation")
    if n == 1:
        return PlanResult(
            cost=0, sequence=(0,), optimizer="iterative-improvement", explored=1
        )
    generator = make_rng(rng)
    evaluator = PrefixEvaluator(instance)
    best_cost = None
    best_sequence: Optional[Tuple[int, ...]] = None
    explored = 0
    for _ in range(max(1, restarts)):
        current = _random_connected_sequence(instance, generator)
        current_cost = evaluator.rebase(current)
        explored += 1
        for _ in range(max_rounds):
            improved = False
            moves = sample_moves(n, generator, neighborhood_samples)
            for move, _key, candidate_cost in evaluator.evaluate_neighbors(
                current, moves
            ):
                explored += 1
                if candidate_cost < current_cost:
                    evaluator.advance(move)
                    current = move.apply(current)
                    current_cost = candidate_cost
                    improved = True
                    break
            if not improved:
                break
        if best_cost is None or current_cost < best_cost:
            best_cost, best_sequence = current_cost, current
    assert best_sequence is not None
    return PlanResult(
        cost=best_cost,
        sequence=best_sequence,
        optimizer="iterative-improvement",
        explored=explored,
    )


@traced("optimize.sampling")
def random_sampling(
    instance: QONInstance,
    samples: int = 200,
    avoid_cartesian: bool = True,
    rng: RngLike = None,
) -> PlanResult:
    """Best of ``samples`` random sequences (cartesian-avoiding by default)."""
    n = instance.num_relations
    require(n >= 1, "instance must have at least one relation")
    if n == 1:
        return PlanResult(
            cost=0, sequence=(0,), optimizer="random-sampling", explored=1
        )
    generator = make_rng(rng)
    evaluator = PrefixEvaluator(instance)
    best_cost = None
    best_sequence: Optional[Tuple[int, ...]] = None
    for _ in range(max(1, samples)):
        if avoid_cartesian:
            sequence = _random_connected_sequence(instance, generator)
        else:
            order = list(range(n))
            generator.shuffle(order)
            sequence = tuple(order)
        if evaluator.base is None:
            cost = evaluator.rebase(sequence)
        else:
            cost = evaluator.evaluate(sequence)
        if best_cost is None or cost < best_cost:
            best_cost, best_sequence = cost, sequence
    assert best_sequence is not None
    return PlanResult(
        cost=best_cost,
        sequence=best_sequence,
        optimizer="random-sampling",
        explored=max(1, samples),
    )
