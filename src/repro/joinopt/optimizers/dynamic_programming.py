"""Dynamic programming over relation subsets.

Both quantities the cost model needs — the prefix size ``N(X)`` and the
cheapest probe ``min_{k in X} w[k][j]`` — depend only on the *set* of
relations joined so far, never on their order.  The optimal left-deep
cost is therefore a shortest path over the subset lattice:

    best[X | {j}] = min_j ( best[X] + N(X) * min_{k in X} w[k][j] )

with ``2^n`` states and ``n`` transitions per state.  This is the
Selinger-style exact optimizer for the paper's cost model; it agrees
with :func:`~repro.joinopt.optimizers.exhaustive.exhaustive_optimal`
on every instance (a property test in the suite enforces it).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.joinopt.instance import QONInstance
from repro.core.results import PlanResult
from repro.runtime.costcache import active_cache
from repro.utils.validation import require
from repro.observability.tracer import traced


def _next_same_popcount(mask: int) -> int:
    """The next-larger integer with the same popcount (Gosper's hack)."""
    low = mask & -mask
    ripple = mask + low
    return ripple | ((mask ^ ripple) >> (low.bit_length() + 1))


@traced("optimize.dp")
def dp_optimal(
    instance: QONInstance,
    allow_cartesian: bool = True,
    max_relations: int = 18,
) -> PlanResult:
    """Optimal join sequence by subset DP (exact, ``O(2^n n^2)``)."""
    n = instance.num_relations
    require(n >= 1, "instance must have at least one relation")
    require(
        n <= max_relations,
        f"subset DP limited to {max_relations} relations "
        f"(instance has {n}); raise max_relations explicitly to override",
    )
    if n == 1:
        return PlanResult(
            cost=0, sequence=(0,), optimizer="dp", explored=1, is_exact=True
        )

    graph = instance.graph
    full = (1 << n) - 1
    cache = active_cache()

    # Pre-sized mask-indexed tables: the hot loop indexes lists instead
    # of hashing dict keys.  ``best_cost[mask]`` is ``None`` until the
    # mask is reached; ``parent[mask]`` -> (previous mask, joined
    # relation); ``prefix_size[mask]`` = N(relations in mask) —
    # order-independent, so the entries are shared through the cost
    # cache (key: the bitmask) with branch-and-bound and the pruned
    # exhaustive search.
    table = 1 << n
    best_cost: List[Optional[object]] = [None] * table
    parent: List[Tuple[int, int]] = [(0, -1)] * table
    prefix_size: List[Optional[object]] = [None] * table

    for first in range(n):
        mask = 1 << first
        best_cost[mask] = 0
        prefix_size[mask] = instance.size(first)
        parent[mask] = (0, first)

    explored = n
    # Iterate source masks one popcount layer at a time; Gosper's hack
    # enumerates each layer in increasing numeric order.  Every
    # predecessor of a popcount-p mask sits in layer p-1 and is
    # numerically smaller than the mask, so relaxations into any given
    # mask arrive in exactly the order the old full numeric scan
    # produced — winners, tie-breaks, ``explored`` and the
    # reconstructed sequence are bit-identical (pinned by the
    # dp-vs-exhaustive property test).
    for layer in range(1, n):
        mask = (1 << layer) - 1
        while mask <= full:
            if best_cost[mask] is None:
                mask = _next_same_popcount(mask)
                continue
            base_cost = best_cost[mask]
            base_size = prefix_size[mask]
            members = [k for k in range(n) if mask >> k & 1]
            for j in range(n):
                if mask >> j & 1:
                    continue
                connected = any(graph.has_edge(k, j) for k in members)
                if not allow_cartesian and not connected:
                    continue
                probe = min(instance.access_cost(k, j) for k in members)
                new_cost = base_cost + base_size * probe
                new_mask = mask | (1 << j)
                explored += 1
                current = best_cost[new_mask]
                if current is None or new_cost < current:
                    best_cost[new_mask] = new_cost
                    parent[new_mask] = (mask, j)
                    if prefix_size[new_mask] is None:
                        def extend_size(
                            base: object = base_size,
                            j: int = j,
                            members: List[int] = members,
                        ) -> object:
                            size = base * instance.size(j)
                            for k in members:
                                selectivity = instance.selectivity(k, j)
                                if selectivity != 1:
                                    size = size * selectivity
                            return size

                        if cache is not None:
                            prefix_size[new_mask] = cache.get_or_compute(
                                instance, "qon-size", new_mask, extend_size
                            )
                        else:
                            prefix_size[new_mask] = extend_size()
            mask = _next_same_popcount(mask)

    if best_cost[full] is None:
        # Disconnected graph with cartesian products forbidden.
        require(
            allow_cartesian is False,
            "internal error: DP failed to reach the full relation set",
        )
        return dp_optimal(
            instance, allow_cartesian=True, max_relations=max_relations
        )

    # Reconstruct the sequence.
    sequence: List[int] = []
    mask = full
    while mask:
        mask, joined = parent[mask]
        sequence.append(joined)
    sequence.reverse()

    return PlanResult(
        cost=best_cost[full],
        sequence=tuple(sequence),
        optimizer="dp",
        explored=explored,
        is_exact=True,
    )
