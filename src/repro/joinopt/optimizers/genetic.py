"""Genetic algorithm over join sequences (Bennett/Steinbrunn style).

Permutation-encoded individuals, order-preserving crossover, swap
mutation, tournament selection — the remaining classic from the
randomized join-ordering literature, rounding out the heuristic zoo
whose limits Theorem 9 establishes.

Fitness comparisons happen on log2 of the cost, so the algorithm is
stable on the hardness instances' astronomically scaled costs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.joinopt.instance import QONInstance
from repro.core.results import PlanResult
from repro.joinopt.optimizers.local_search import _random_connected_sequence
from repro.perf.incremental import PrefixEvaluator
from repro.utils.lognum import log2_of
from repro.utils.rng import Random, RngLike, make_rng
from repro.utils.validation import require
from repro.observability.tracer import traced


def _order_crossover(
    parent_a: Tuple[int, ...], parent_b: Tuple[int, ...], rng: Random
) -> Tuple[int, ...]:
    """OX1: copy a slice of A, fill the rest in B's relative order."""
    n = len(parent_a)
    start = rng.randrange(n)
    end = rng.randrange(start + 1, n + 1)
    slice_values = set(parent_a[start:end])
    child: List[Optional[int]] = [None] * n
    child[start:end] = parent_a[start:end]
    fill = [gene for gene in parent_b if gene not in slice_values]
    cursor = 0
    for index in range(n):
        if child[index] is None:
            child[index] = fill[cursor]
            cursor += 1
    return tuple(child)  # type: ignore[arg-type]


def _swap_mutation(
    sequence: Tuple[int, ...], rng: Random
) -> Tuple[int, ...]:
    n = len(sequence)
    i, j = rng.randrange(n), rng.randrange(n)
    mutated = list(sequence)
    mutated[i], mutated[j] = mutated[j], mutated[i]
    return tuple(mutated)


@traced("optimize.genetic")
def genetic_algorithm(
    instance: QONInstance,
    population_size: int = 32,
    generations: int = 40,
    mutation_rate: float = 0.25,
    tournament: int = 3,
    rng: RngLike = None,
) -> PlanResult:
    """Evolve a population of join sequences; returns the best found."""
    n = instance.num_relations
    require(n >= 1, "instance must have at least one relation")
    require(population_size >= 2, "population must have at least 2 members")
    if n == 1:
        return PlanResult(cost=0, sequence=(0,), optimizer="genetic", explored=1)
    generator = make_rng(rng)
    evaluator = PrefixEvaluator(instance)

    def evaluate(sequence: Tuple[int, ...]) -> object:
        if evaluator.base is None:
            return evaluator.rebase(sequence)
        return evaluator.evaluate(sequence)

    def fitness(sequence: Tuple[int, ...]) -> float:
        return log2_of(evaluate(sequence))

    population = [
        _random_connected_sequence(instance, generator)
        for _ in range(population_size)
    ]
    scores = [fitness(member) for member in population]
    explored = population_size
    best_index = min(range(population_size), key=lambda i: scores[i])
    best_sequence = population[best_index]
    best_score = scores[best_index]

    for _ in range(generations):
        next_population: List[Tuple[int, ...]] = [best_sequence]  # elitism
        while len(next_population) < population_size:
            contenders = [
                generator.randrange(population_size) for _ in range(tournament)
            ]
            parent_a = population[min(contenders, key=lambda i: scores[i])]
            contenders = [
                generator.randrange(population_size) for _ in range(tournament)
            ]
            parent_b = population[min(contenders, key=lambda i: scores[i])]
            child = _order_crossover(parent_a, parent_b, generator)
            if generator.random() < mutation_rate:
                child = _swap_mutation(child, generator)
            next_population.append(child)
        population = next_population
        scores = [fitness(member) for member in population]
        explored += population_size
        generation_best = min(range(population_size), key=lambda i: scores[i])
        if scores[generation_best] < best_score:
            best_score = scores[generation_best]
            best_sequence = population[generation_best]

    return PlanResult(
        cost=evaluate(best_sequence),
        sequence=best_sequence,
        optimizer="genetic",
        explored=explored,
    )
