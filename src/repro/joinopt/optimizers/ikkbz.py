"""IKKBZ: the rank-based polynomial optimizer for tree queries.

Ibaraki & Kameda (TODS 1984) — reference [1] of the paper — showed the
nested-loops join-ordering problem is solvable in polynomial time for
*tree* query graphs via an adjacent-sequence-interchange (ASI)
argument; Krishnamurthy, Boral & Zaniolo (VLDB 1986, reference [6])
brought it to O(n^2).  The paper's Section 6.3 contrasts this tractable
family against the hardness results, so the reproduction includes the
algorithm.

Model mapping: in a tree traversal without cartesian products, the
relation appended at each step is adjacent to exactly one earlier
relation (its tree parent ``p``), so the probe cost is
``c_i = w[p][i]`` and the size multiplier is ``f_i = t_i * s_{p,i}``.
This satisfies ASI with rank ``(f - 1) / c``; for a fixed root the
optimal order merges precedence-constrained chains by ascending rank,
and the global optimum is the best over all roots.

Exact-number mode only: ranks require subtraction, which the log-domain
type cannot represent (they can be negative).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.joinopt.cost import total_cost
from repro.joinopt.instance import QONInstance
from repro.core.results import PlanResult
from repro.utils.lognum import LogNumber
from repro.utils.validation import ValidationError, require
from repro.observability.tracer import traced


@dataclass
class _Module:
    """A merged run of relations with aggregated ASI statistics."""

    relations: Tuple[int, ...]
    cost: Fraction  # C(S)
    factor: Fraction  # T(S)

    @property
    def rank(self) -> Fraction:
        return (self.factor - 1) / self.cost

    def followed_by(self, other: "_Module") -> "_Module":
        return _Module(
            relations=self.relations + other.relations,
            cost=self.cost + self.factor * other.cost,
            factor=self.factor * other.factor,
        )


def _require_tree(instance: QONInstance) -> None:
    graph = instance.graph
    require(
        graph.is_connected() and graph.num_edges == graph.num_vertices - 1,
        "IKKBZ requires a connected tree query graph",
    )
    for value in instance.sizes:
        require(
            not isinstance(value, LogNumber),
            "IKKBZ needs exact numbers (ranks can be negative)",
        )


def _merge_sorted(chains: List[List[_Module]]) -> List[_Module]:
    """Merge rank-ascending chains into one rank-ascending list."""
    merged: List[_Module] = []
    for chain in chains:
        merged.extend(chain)
    merged.sort(key=lambda module: module.rank)
    return merged


def _normalize(chain: List[_Module]) -> List[_Module]:
    """Merge adjacent out-of-rank-order modules until ascending."""
    index = 0
    while index < len(chain) - 1:
        if chain[index].rank > chain[index + 1].rank:
            chain[index] = chain[index].followed_by(chain[index + 1])
            del chain[index + 1]
            if index > 0:
                index -= 1
        else:
            index += 1
    return chain


def _subtree_chain(
    instance: QONInstance,
    vertex: int,
    parent: int,
    children: Dict[int, List[int]],
) -> List[_Module]:
    """The optimal rank-ascending chain for the subtree at ``vertex``."""
    child_chains = [
        _subtree_chain(instance, child, vertex, children)
        for child in children[vertex]
    ]
    merged = _merge_sorted(child_chains)
    own = _Module(
        relations=(vertex,),
        cost=Fraction(instance.access_cost(parent, vertex)),
        factor=Fraction(instance.size(vertex))
        * Fraction(instance.selectivity(parent, vertex)),
    )
    return _normalize([own] + merged)


def _sequence_for_root(instance: QONInstance, root: int) -> Tuple[int, ...]:
    """IKKBZ order for one choice of the outermost relation."""
    graph = instance.graph
    children: Dict[int, List[int]] = {v: [] for v in graph.vertices()}
    parent_of: Dict[int, int] = {root: root}
    frontier = [root]
    while frontier:
        vertex = frontier.pop()
        for neighbor in graph.neighbors(vertex):
            if neighbor not in parent_of:
                parent_of[neighbor] = vertex
                children[vertex].append(neighbor)
                frontier.append(neighbor)
    chains = [
        _subtree_chain(instance, child, root, children)
        for child in children[root]
    ]
    ordered = _normalize(_merge_sorted(chains))
    sequence: List[int] = [root]
    for module in ordered:
        sequence.extend(module.relations)
    return tuple(sequence)


@traced("optimize.ikkbz")
def ikkbz(instance: QONInstance) -> PlanResult:
    """Optimal cartesian-product-free sequence for a tree query graph.

    Polynomial time; exact among sequences that respect the tree
    precedence (which includes the global optimum for tree queries
    under this cost model, cf. Ibaraki & Kameda).
    """
    _require_tree(instance)
    n = instance.num_relations
    if n == 1:
        return PlanResult(
            cost=0, sequence=(0,), optimizer="ikkbz", explored=1, is_exact=True
        )
    best_cost = None
    best_sequence: Optional[Tuple[int, ...]] = None
    for root in range(n):
        sequence = _sequence_for_root(instance, root)
        cost = total_cost(instance, sequence)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_sequence = sequence
    assert best_sequence is not None
    return PlanResult(
        cost=best_cost,
        sequence=best_sequence,
        optimizer="ikkbz",
        explored=n,
        is_exact=True,
    )
