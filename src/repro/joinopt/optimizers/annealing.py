"""Simulated annealing over join sequences.

The acceptance test works on ``log2`` of the cost ratio so it behaves
sensibly even when costs differ by thousands of orders of magnitude —
which is precisely the regime the hardness instances create.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.joinopt.instance import QONInstance
from repro.core.results import PlanResult
from repro.joinopt.optimizers.local_search import _random_connected_sequence
from repro.perf.incremental import PrefixEvaluator, sample_moves
from repro.utils.lognum import log2_of
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import require
from repro.observability.tracer import traced


@traced("optimize.annealing")
def simulated_annealing(
    instance: QONInstance,
    initial_temperature: float = 16.0,
    cooling: float = 0.95,
    steps_per_temperature: int = 20,
    min_temperature: float = 0.05,
    rng: RngLike = None,
) -> PlanResult:
    """Simulated annealing; temperature acts on log2(cost) deltas.

    A move that multiplies the cost by ``2**d`` is accepted with
    probability ``exp(-d / T)``, so ``T`` is measured in "doublings".
    """
    n = instance.num_relations
    require(n >= 1, "instance must have at least one relation")
    if n == 1:
        return PlanResult(
            cost=0, sequence=(0,), optimizer="simulated-annealing", explored=1
        )
    generator = make_rng(rng)
    evaluator = PrefixEvaluator(instance)
    current = _random_connected_sequence(instance, generator)
    current_cost = evaluator.rebase(current)
    current_log = log2_of(current_cost)
    best_cost, best_sequence = current_cost, current
    best_log = current_log
    explored = 1

    temperature = initial_temperature
    while temperature > min_temperature:
        for _ in range(steps_per_temperature):
            (move,) = sample_moves(n, generator, 1)
            ((_, candidate, candidate_cost),) = evaluator.evaluate_neighbors(
                current, [move]
            )
            candidate_log = log2_of(candidate_cost)
            explored += 1
            delta = candidate_log - current_log
            if delta <= 0 or generator.random() < math.exp(-delta / temperature):
                evaluator.advance(move)
                current, current_cost, current_log = (
                    candidate,
                    candidate_cost,
                    candidate_log,
                )
                if current_log < best_log:
                    best_cost, best_sequence = current_cost, current
                    best_log = current_log
        temperature *= cooling

    return PlanResult(
        cost=best_cost,
        sequence=best_sequence,
        optimizer="simulated-annealing",
        explored=explored,
    )
