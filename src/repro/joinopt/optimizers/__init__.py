"""Join-order optimizers for QO_N instances.

Exact:

* :func:`exhaustive_optimal` — all ``n!`` permutations with pruning;
* :func:`dp_optimal` — dynamic programming over relation subsets
  (the left-deep optimum in ``O(2^n n^2)``; valid because both
  ``N(X)`` and the probe cost into a new relation depend on the
  *set* ``X`` only, not its order).

Polynomial-time heuristics (the algorithms whose competitive ratio the
paper lower-bounds):

* :func:`greedy_min_cost`, :func:`greedy_min_size` — greedy next-join;
* :func:`ikkbz` — the Ibaraki–Kameda / Krishnamurthy–Boral–Zaniolo
  rank-based optimum for *tree* query graphs;
* :func:`iterative_improvement`, :func:`simulated_annealing`,
  :func:`random_sampling` — randomized search.
"""

from repro.joinopt.optimizers.base import PlanResult
from repro.joinopt.optimizers.exhaustive import exhaustive_optimal
from repro.joinopt.optimizers.dynamic_programming import dp_optimal
from repro.joinopt.optimizers.greedy import greedy_min_cost, greedy_min_size
from repro.joinopt.optimizers.ikkbz import ikkbz
from repro.joinopt.optimizers.local_search import (
    iterative_improvement,
    random_sampling,
)
from repro.joinopt.optimizers.annealing import simulated_annealing
from repro.joinopt.optimizers.genetic import genetic_algorithm
from repro.joinopt.optimizers.branch_and_bound import branch_and_bound


def __getattr__(name: str) -> type:
    # Deprecated alias kept importable (lazily, so internal code
    # cannot pick it up by accident; see lint rule RPR003).
    if name == "OptimizerResult":
        from repro.core.results import deprecated_alias

        return deprecated_alias(name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "OptimizerResult",
    "PlanResult",
    "exhaustive_optimal",
    "dp_optimal",
    "greedy_min_cost",
    "greedy_min_size",
    "ikkbz",
    "iterative_improvement",
    "random_sampling",
    "simulated_annealing",
    "genetic_algorithm",
    "branch_and_bound",
]
