"""Exact search with an admissible completion bound.

The plain exhaustive optimizer prunes only on the accumulated partial
cost.  This variant adds an admissible bound on the *remaining* work:
relation sizes are >= 1 and each edge's selectivity is applied at most
once over a whole sequence, so from a prefix of size ``N(X)`` every
future prefix has size at least ``N(X) * prod(all edge selectivities)``
and every future join costs at least that times the globally cheapest
probe.  The bound never overestimates, so optimality is preserved;
children are explored cheapest-first and the incumbent is seeded with
the greedy heuristic.  The scaling benchmark ablates the effect
against the plain search and the subset DP.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Tuple

from repro.joinopt.instance import QONInstance
from repro.core.results import PlanResult
from repro.joinopt.optimizers.greedy import greedy_min_cost
from repro.runtime.costcache import active_cache
from repro.utils.validation import require
from repro.observability.tracer import traced


@traced("optimize.bnb")
def branch_and_bound(
    instance: QONInstance,
    max_relations: int = 13,
) -> PlanResult:
    """Optimal join sequence via bounded DFS (exact)."""
    n = instance.num_relations
    require(n >= 1, "instance must have at least one relation")
    require(
        n <= max_relations,
        f"branch and bound limited to {max_relations} relations "
        f"(instance has {n}); raise max_relations explicitly to override",
    )
    if n == 1:
        return PlanResult(
            cost=0, sequence=(0,), optimizer="branch-and-bound",
            explored=1, is_exact=True,
        )

    # Admissible floor: sizes >= 1 and each selectivity applies once,
    # so any future prefix size >= current size * full_shrink.
    full_shrink = Fraction(1)
    for i, j in instance.graph.edges:
        full_shrink *= Fraction(instance.selectivity(i, j))
    min_probe = min(
        instance.access_cost(i, j)
        for i in range(n)
        for j in range(n)
        if i != j
    )

    seed = greedy_min_cost(instance)
    best_cost = seed.cost
    best_sequence: Tuple[int, ...] = seed.sequence
    cache = active_cache()
    explored = 0

    prefix: List[int] = []
    used = [False] * n

    def extension_size(
        prefix_size: object, candidate: int, prefix_mask: int
    ) -> object:
        """``N(prefix + candidate)`` — cache-shared (key: bitmask)
        with the subset DP and the pruned exhaustive search."""

        def compute() -> object:
            size = prefix_size * instance.size(candidate)
            for earlier in prefix:
                selectivity = instance.selectivity(earlier, candidate)
                if selectivity != 1:
                    size = size * selectivity
            return size

        if cache is None:
            return compute()
        return cache.get_or_compute(
            instance, "qon-size", prefix_mask | (1 << candidate), compute
        )

    def recurse(
        prefix_size: object, partial_cost: object, prefix_mask: int
    ) -> None:
        nonlocal best_cost, best_sequence, explored
        depth = len(prefix)
        if depth == n:
            explored += 1
            if partial_cost < best_cost:
                best_cost = partial_cost
                best_sequence = tuple(prefix)
            return
        candidates = []
        for candidate in range(n):
            if used[candidate]:
                continue
            if prefix:
                probe = min(
                    instance.access_cost(earlier, candidate)
                    for earlier in prefix
                )
                step = prefix_size * probe
                new_cost = partial_cost + step
                new_size = extension_size(prefix_size, candidate, prefix_mask)
            else:
                new_cost = 0
                new_size = instance.size(candidate)
            candidates.append((new_cost, candidate, new_size))
        candidates.sort(key=lambda item: (item[0], item[1]))
        for new_cost, candidate, new_size in candidates:
            remaining = n - depth - 1
            lower = new_cost
            if remaining > 0 and depth >= 1:
                lower = (
                    new_cost
                    + remaining * new_size * full_shrink * min_probe
                )
            if depth >= 1 and lower >= best_cost:
                explored += 1
                continue
            used[candidate] = True
            prefix.append(candidate)
            recurse(new_size, new_cost, prefix_mask | (1 << candidate))
            prefix.pop()
            used[candidate] = False

    recurse(0, 0, 0)
    return PlanResult(
        cost=best_cost,
        sequence=best_sequence,
        optimizer="branch-and-bound",
        explored=explored,
        is_exact=True,
    )
