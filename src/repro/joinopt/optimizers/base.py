"""Result type shared by every QO_N optimizer.

Since the result unification this module only re-exports the unified
:class:`repro.core.results.PlanResult` plus the deprecated
``OptimizerResult`` alias (which warns once when constructed).  New
code should import :class:`PlanResult` from :mod:`repro.core.results`.
"""

from __future__ import annotations

from repro.core.results import OptimizerResult, PlanResult

__all__ = ["OptimizerResult", "PlanResult"]
