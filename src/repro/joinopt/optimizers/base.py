"""Common result type shared by every QO_N optimizer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class OptimizerResult:
    """Outcome of one optimizer run.

    Attributes:
        cost: cost of the best join sequence found (instance-numeric:
            ``int``/``Fraction`` in exact mode, ``LogNumber`` in log
            mode).
        sequence: the best join sequence (tuple of relation indices).
        optimizer: name of the algorithm that produced it.
        explored: number of (partial) plans examined — the work metric
            reported by the scaling benchmarks.
        is_exact: True when the algorithm guarantees optimality for the
            instance it was given.
    """

    cost: object
    sequence: Tuple[int, ...]
    optimizer: str
    explored: int = 0
    is_exact: bool = False

    def ratio_to(self, optimal_cost) -> float:
        """Competitive ratio against a known optimal cost.

        Computed in log2 domain so astronomically large costs work:
        returns ``2 ** (log2(cost) - log2(optimal))`` as a float, or
        ``inf`` when out of float range.
        """
        from repro.utils.lognum import log2_of

        gap_log2 = log2_of(self.cost) - log2_of(optimal_cost)
        if gap_log2 > 1023:
            return float("inf")
        return 2.0 ** gap_log2
