"""Result type shared by every QO_N optimizer.

Since the result unification this module only re-exports the unified
:class:`repro.core.results.PlanResult` plus the deprecated
``OptimizerResult`` alias (which warns once when constructed).  New
code should import :class:`PlanResult` from :mod:`repro.core.results`.
"""

from __future__ import annotations

from repro.core.results import PlanResult

__all__ = ["OptimizerResult", "PlanResult"]


def __getattr__(name: str) -> type:
    if name == "OptimizerResult":
        from repro.core.results import deprecated_alias

        return deprecated_alias(name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
