"""Exhaustive join-order search with branch-and-bound pruning.

Enumerates permutations depth-first, carrying the running prefix size
``N(X)`` and partial cost; because every ``H_i`` is positive, a partial
cost at or above the incumbent prunes the whole subtree.  Exact, and
practical to n ~ 10-11.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.joinopt.instance import QONInstance
from repro.core.results import PlanResult
from repro.runtime.costcache import active_cache
from repro.utils.validation import require
from repro.observability.tracer import traced


@traced("optimize.exhaustive")
def exhaustive_optimal(
    instance: QONInstance,
    allow_cartesian: bool = True,
    max_relations: int = 12,
) -> PlanResult:
    """Optimal join sequence by pruned exhaustive enumeration.

    Args:
        allow_cartesian: when False, sequences where a join has no
            predicate to the prefix are skipped (the paper notes the
            QO_N gap survives this restriction).
        max_relations: guard against accidentally launching a factorial
            search on a large instance.
    """
    n = instance.num_relations
    require(n >= 1, "instance must have at least one relation")
    require(
        n <= max_relations,
        f"exhaustive search limited to {max_relations} relations "
        f"(instance has {n}); raise max_relations explicitly to override",
    )
    if n == 1:
        return PlanResult(
            cost=0, sequence=(0,), optimizer="exhaustive", explored=1,
            is_exact=True,
        )

    graph = instance.graph
    cache = active_cache()
    best_cost = None
    best_sequence: Optional[Tuple[int, ...]] = None
    explored = 0

    prefix: List[int] = []
    used = [False] * n

    def extension_size(
        prefix_size: object, candidate: int, prefix_mask: int
    ) -> object:
        """``N(prefix + candidate)`` — order-free, so cache-shared
        (key: the extended bitmask) with the subset DP and B&B."""

        def compute() -> object:
            size = prefix_size * instance.size(candidate)
            for earlier in prefix:
                selectivity = instance.selectivity(earlier, candidate)
                if selectivity != 1:
                    size = size * selectivity
            return size

        if cache is None:
            return compute()
        return cache.get_or_compute(
            instance, "qon-size", prefix_mask | (1 << candidate), compute
        )

    def recurse(
        prefix_size: object, partial_cost: object, prefix_mask: int
    ) -> None:
        nonlocal best_cost, best_sequence, explored
        if len(prefix) == n:
            explored += 1
            if best_cost is None or partial_cost < best_cost:
                best_cost = partial_cost
                best_sequence = tuple(prefix)
            return
        for candidate in range(n):
            if used[candidate]:
                continue
            if prefix:
                connected = any(
                    graph.has_edge(candidate, earlier) for earlier in prefix
                )
                if not allow_cartesian and not connected:
                    continue
                probe = min(
                    instance.access_cost(earlier, candidate)
                    for earlier in prefix
                )
                step_cost = prefix_size * probe
                new_cost = (
                    step_cost if partial_cost is None
                    else partial_cost + step_cost
                )
                if best_cost is not None and new_cost >= best_cost:
                    explored += 1
                    continue
                new_size = extension_size(prefix_size, candidate, prefix_mask)
            else:
                new_cost = partial_cost
                new_size = instance.size(candidate)
            used[candidate] = True
            prefix.append(candidate)
            recurse(new_size, new_cost, prefix_mask | (1 << candidate))
            prefix.pop()
            used[candidate] = False

    recurse(None, None, 0)
    if best_sequence is None:
        # Every sequence was filtered out (disconnected graph with
        # allow_cartesian=False): fall back to allowing products.
        require(
            allow_cartesian is False,
            "internal error: no sequence found despite cartesian products",
        )
        return exhaustive_optimal(
            instance, allow_cartesian=True, max_relations=max_relations
        )
    return PlanResult(
        cost=best_cost,
        sequence=best_sequence,
        optimizer="exhaustive",
        explored=explored,
        is_exact=True,
    )
