"""Graph substrate: undirected graphs, clique and vertex-cover machinery.

The reductions traffic in three graph problems:

* VERTEX COVER (intermediate step of Lemma 3/4),
* CLIQUE with minimum degree ``|V| - 14`` (input of f_N, Section 4),
* 2/3-CLIQUE (input of f_H, Section 5).

This package provides the graph model, exact and heuristic solvers for
both problems, generators for the benchmark workloads, and the simple
structural facts the proofs rely on (Lemma 7's edge bound).
"""

from repro.graphs.graph import Graph
from repro.graphs.clique import (
    greedy_clique,
    is_clique,
    max_clique,
    max_clique_size,
)
from repro.graphs.vertex_cover import (
    greedy_vertex_cover_2approx,
    is_vertex_cover,
    min_vertex_cover,
)
from repro.graphs.properties import (
    lemma7_edge_bound,
    min_degree,
    verify_lemma7,
)
from repro.graphs.generators import (
    complete_graph,
    connected_graph_with_edges,
    dense_min_degree_graph,
    gnp_random_graph,
    planted_clique_graph,
)

__all__ = [
    "Graph",
    "greedy_clique",
    "is_clique",
    "max_clique",
    "max_clique_size",
    "greedy_vertex_cover_2approx",
    "is_vertex_cover",
    "min_vertex_cover",
    "lemma7_edge_bound",
    "min_degree",
    "verify_lemma7",
    "complete_graph",
    "connected_graph_with_edges",
    "dense_min_degree_graph",
    "gnp_random_graph",
    "planted_clique_graph",
]
