"""Undirected simple graph on vertices ``0 .. n-1``.

A deliberately small, dependency-free adjacency-set implementation;
the reductions need complements, induced subgraphs, disjoint unions
and connectivity checks, all provided here.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.utils.validation import check_index, require

Edge = Tuple[int, int]


def _normalize_edge(u: int, v: int) -> Edge:
    require(u != v, f"self-loop at vertex {u} is not allowed")
    return (u, v) if u < v else (v, u)


class Graph:
    """Immutable undirected simple graph."""

    __slots__ = ("_n", "_adjacency", "_edges")

    def __init__(self, num_vertices: int,
                 edges: Iterable[Sequence[int]] = ()) -> None:
        require(num_vertices >= 0, "num_vertices must be non-negative")
        self._n = num_vertices
        adjacency: List[Set[int]] = [set() for _ in range(num_vertices)]
        edge_set: Set[Edge] = set()
        for u, v in edges:
            check_index(u, num_vertices, "edge endpoint")
            check_index(v, num_vertices, "edge endpoint")
            edge = _normalize_edge(u, v)
            if edge in edge_set:
                continue
            edge_set.add(edge)
            adjacency[u].add(v)
            adjacency[v].add(u)
        self._adjacency = tuple(frozenset(neighbors) for neighbors in adjacency)
        self._edges = frozenset(edge_set)

    # -- accessors ---------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def edges(self) -> FrozenSet[Edge]:
        return self._edges

    def vertices(self) -> range:
        return range(self._n)

    def neighbors(self, vertex: int) -> FrozenSet[int]:
        check_index(vertex, self._n, "vertex")
        return self._adjacency[vertex]

    def degree(self, vertex: int) -> int:
        return len(self.neighbors(vertex))

    def has_edge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        check_index(u, self._n, "vertex")
        check_index(v, self._n, "vertex")
        return v in self._adjacency[u]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._n, self._edges))

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self.num_edges})"

    # -- derived graphs ----------------------------------------------
    def complement(self) -> "Graph":
        """The complement graph (no self-loops)."""
        missing = [
            (u, v)
            for u, v in itertools.combinations(range(self._n), 2)
            if v not in self._adjacency[u]
        ]
        return Graph(self._n, missing)

    def induced_subgraph(self, vertices: Sequence[int]) -> "Graph":
        """Subgraph induced by ``vertices``, relabelled to ``0..k-1``.

        The relabelling follows the order of ``vertices``.
        """
        index = {v: i for i, v in enumerate(vertices)}
        require(len(index) == len(vertices), "duplicate vertices")
        edges = [
            (index[u], index[v])
            for u, v in self._edges
            if u in index and v in index
        ]
        return Graph(len(vertices), edges)

    def disjoint_union(self, other: "Graph") -> "Graph":
        """Disjoint union; ``other``'s vertices are shifted by ``self.n``."""
        shifted = [(u + self._n, v + self._n) for u, v in other._edges]
        return Graph(self._n + other._n, list(self._edges) + shifted)

    def with_edges(self, extra_edges: Iterable[Sequence[int]]) -> "Graph":
        """A copy with additional edges."""
        return Graph(self._n, list(self._edges) + [tuple(e) for e in extra_edges])

    def add_universal_vertices(self, count: int) -> "Graph":
        """Append ``count`` vertices adjacent to everything (old and new).

        This is the padding step of Lemmas 3 and 4.
        """
        require(count >= 0, "count must be non-negative")
        n = self._n
        new_edges: List[Edge] = list(self._edges)
        for offset in range(count):
            w = n + offset
            for u in range(w):
                new_edges.append((u, w))
        return Graph(n + count, new_edges)

    # -- structure ---------------------------------------------------
    def edges_within(self, vertices: Iterable[int]) -> int:
        """Number of edges with both endpoints in ``vertices``."""
        vertex_set = set(vertices)
        return sum(
            1 for u, v in self._edges if u in vertex_set and v in vertex_set
        )

    def is_connected(self) -> bool:
        """True for the empty graph and any connected graph."""
        if self._n == 0:
            return True
        seen = {0}
        frontier = [0]
        while frontier:
            vertex = frontier.pop()
            for neighbor in self._adjacency[vertex]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == self._n

    def connected_components(self) -> List[List[int]]:
        """Connected components as sorted vertex lists."""
        seen: Set[int] = set()
        components: List[List[int]] = []
        for start in range(self._n):
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                vertex = frontier.pop()
                for neighbor in self._adjacency[vertex]:
                    if neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
            seen |= component
            components.append(sorted(component))
        return components

    def degree_sequence(self) -> List[int]:
        """Degrees in vertex order."""
        return [len(self._adjacency[v]) for v in range(self._n)]
