"""Vertex cover: exact solver and the classical 2-approximation.

VERTEX COVER is the middle step of the paper's reduction chain
(Theorem 2 / Lemma 3): satisfiable formulas map to graphs with small
covers.  The exact solver is used to certify the reduction on small
instances; the 2-approximation rounds out the substrate (and doubles
as a fast upper bound for the branch-and-bound).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.graphs.graph import Graph


def is_vertex_cover(graph: Graph, cover: Iterable[int]) -> bool:
    """True if every edge has an endpoint in ``cover``."""
    cover_set = set(cover)
    return all(u in cover_set or v in cover_set for u, v in graph.edges)


def greedy_vertex_cover_2approx(graph: Graph) -> List[int]:
    """Maximal-matching 2-approximation (Gavril/Yannakakis)."""
    cover: Set[int] = set()
    for u, v in sorted(graph.edges):
        if u not in cover and v not in cover:
            cover.add(u)
            cover.add(v)
    return sorted(cover)


def min_vertex_cover(graph: Graph) -> List[int]:
    """An exact minimum vertex cover via bounded search.

    Branch on the highest-degree vertex of the residual graph: either
    it joins the cover, or all of its neighbors do.  With the standard
    degree-1/degree-0 simplifications this is exact and fast for the
    certification sizes (tens of vertices).
    """
    best: Optional[Set[int]] = set(greedy_vertex_cover_2approx(graph))
    edges = [tuple(edge) for edge in sorted(graph.edges)]

    def residual_degrees(covered: Set[int]) -> dict[int, int]:
        degrees: dict[int, int] = {}
        for u, v in edges:
            if u in covered or v in covered:
                continue
            degrees[u] = degrees.get(u, 0) + 1
            degrees[v] = degrees.get(v, 0) + 1
        return degrees

    def recurse(covered: Set[int]) -> None:
        nonlocal best
        if best is not None and len(covered) >= len(best):
            return
        degrees = residual_degrees(covered)
        if not degrees:
            if best is None or len(covered) < len(best):
                best = set(covered)
            return
        # Lower bound: a maximal matching on the residual graph.
        matching = 0
        matched: Set[int] = set()
        for u, v in edges:
            if u in covered or v in covered or u in matched or v in matched:
                continue
            matched.add(u)
            matched.add(v)
            matching += 1
        if best is not None and len(covered) + matching >= len(best):
            return
        # Degree-1 simplification: cover the neighbor.
        for u, v in edges:
            if u in covered or v in covered:
                continue
            if degrees[u] == 1:
                recurse(covered | {v})
                return
            if degrees[v] == 1:
                recurse(covered | {u})
                return
        pivot = max(degrees, key=lambda vertex: degrees[vertex])
        # Branch 1: pivot in the cover.
        recurse(covered | {pivot})
        # Branch 2: all pivot's residual neighbors in the cover.
        neighbors = {
            (v if u == pivot else u)
            for u, v in edges
            if pivot in (u, v) and u not in covered and v not in covered
        }
        recurse(covered | neighbors)

    recurse(set())
    assert best is not None
    return sorted(best)


def min_vertex_cover_size(graph: Graph) -> int:
    """Size of a minimum vertex cover."""
    return len(min_vertex_cover(graph))


def independence_number(graph: Graph) -> int:
    """alpha(G) = n - tau(G) by Gallai's identity."""
    return graph.num_vertices - min_vertex_cover_size(graph)
