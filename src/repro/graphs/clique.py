"""Clique search: exact branch-and-bound and greedy heuristics.

The exact solver is a Bron–Kerbosch-style maximum-clique search with
pivoting and a greedy-coloring upper bound — comfortably exact for the
graph sizes produced by the reductions' certification paths (tens of
vertices; the reduction graphs are dense, which the coloring bound
handles well).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, make_rng


def is_clique(graph: Graph, vertices: Iterable[int]) -> bool:
    """True if ``vertices`` are pairwise adjacent."""
    vertex_list = list(vertices)
    for i, u in enumerate(vertex_list):
        for v in vertex_list[i + 1 :]:
            if not graph.has_edge(u, v):
                return False
    return True


def max_clique(graph: Graph, lower_bound: int = 0) -> List[int]:
    """An exact maximum clique (sorted vertex list).

    ``lower_bound`` lets the caller seed the search with a known clique
    size so branches are pruned earlier.
    """
    best: List[int] = []
    if graph.num_vertices == 0:
        return best
    # Seed with a greedy clique — free pruning power.
    seed = greedy_clique(graph)
    if len(seed) >= lower_bound:
        best = sorted(seed)

    adjacency = [graph.neighbors(v) for v in range(graph.num_vertices)]

    def expand(candidates: List[int], current: List[int]) -> None:
        nonlocal best
        if not candidates:
            if len(current) > len(best):
                best = sorted(current)
            return
        # Greedy coloring upper bound: vertices sharing a color class
        # are pairwise non-adjacent, so #colors bounds the clique size.
        colors = _greedy_color_order(adjacency, candidates)
        for vertex, color in reversed(colors):
            if len(current) + color <= len(best):
                return
            current.append(vertex)
            new_candidates = [
                u for u in candidates if u in adjacency[vertex] and u != vertex
            ]
            expand(new_candidates, current)
            current.pop()
            candidates = [u for u in candidates if u != vertex]

    order = sorted(
        range(graph.num_vertices), key=lambda v: len(adjacency[v]), reverse=True
    )
    expand(order, [])
    return best


def _greedy_color_order(
    adjacency: Sequence[Set[int]], candidates: List[int]
) -> List[tuple[int, int]]:
    """Color candidates greedily; returns (vertex, color#) sorted by color.

    Colors are numbered from 1; within the Tomita scheme the color
    number is an upper bound on the clique extension through that
    vertex.
    """
    color_classes: List[List[int]] = []
    for vertex in candidates:
        placed = False
        for class_index, members in enumerate(color_classes):
            if all(vertex not in adjacency[u] for u in members):
                members.append(vertex)
                placed = True
                break
        if not placed:
            color_classes.append([vertex])
    ordered: List[tuple[int, int]] = []
    for class_index, members in enumerate(color_classes):
        for vertex in members:
            ordered.append((vertex, class_index + 1))
    ordered.sort(key=lambda pair: pair[1])
    return ordered


def max_clique_size(graph: Graph) -> int:
    """omega(G), the exact maximum clique size."""
    return len(max_clique(graph))


def has_clique_of_size(graph: Graph, k: int) -> bool:
    """Decision version: does a clique of size >= k exist?

    Runs the exact search but stops as soon as a clique of size ``k``
    is confirmed.
    """
    if k <= 0:
        return True
    if k > graph.num_vertices:
        return False
    adjacency = [graph.neighbors(v) for v in range(graph.num_vertices)]
    found = False

    def expand(candidates: List[int], size: int) -> None:
        nonlocal found
        if found:
            return
        if size >= k:
            found = True
            return
        if size + len(candidates) < k:
            return
        colors = _greedy_color_order(adjacency, candidates)
        for vertex, color in reversed(colors):
            if found or size + color < k:
                return
            new_candidates = [u for u in candidates if u in adjacency[vertex]]
            expand(new_candidates, size + 1)
            candidates = [u for u in candidates if u != vertex]

    expand(list(range(graph.num_vertices)), 0)
    return found


def greedy_clique(graph: Graph, rng: RngLike = None) -> List[int]:
    """Greedy max-degree clique heuristic (sorted vertex list)."""
    if graph.num_vertices == 0:
        return []
    generator = make_rng(rng)
    order = sorted(
        range(graph.num_vertices),
        key=lambda v: (graph.degree(v), generator.random()),
        reverse=True,
    )
    clique: List[int] = []
    for vertex in order:
        if all(graph.has_edge(vertex, member) for member in clique):
            clique.append(vertex)
    return sorted(clique)


def extend_to_maximal(graph: Graph, clique: Sequence[int]) -> List[int]:
    """Extend a clique greedily until maximal."""
    result = list(clique)
    for vertex in range(graph.num_vertices):
        if vertex in result:
            continue
        if all(graph.has_edge(vertex, member) for member in result):
            result.append(vertex)
    return sorted(result)
