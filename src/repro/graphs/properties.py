"""Structural graph facts used by the proofs.

Lemma 7 of the paper: a graph with ``n`` vertices and maximum clique
size ``omega`` has at most ``n(n-1)/2 - n + omega`` edges.  The lower
bound on costs in Lemma 8 (and Lemma 13 for QO_H) rests entirely on
this inequality, so it is exposed — and checkable — here.
"""

from __future__ import annotations

from repro.graphs.clique import max_clique_size
from repro.graphs.graph import Graph


def min_degree(graph: Graph) -> int:
    """Minimum vertex degree (0 for the empty graph)."""
    if graph.num_vertices == 0:
        return 0
    return min(graph.degree(v) for v in graph.vertices())


def has_min_degree_deficit(graph: Graph, deficit: int) -> bool:
    """True if every vertex has degree >= n - 1 - deficit.

    The paper's CLIQUE variant requires degree >= |V| - 14 for every
    vertex, i.e. deficit 13 from the complete-graph degree n - 1.
    """
    n = graph.num_vertices
    if n == 0:
        return True
    return min_degree(graph) >= n - 1 - deficit


def lemma7_edge_bound(num_vertices: int, clique_size: int) -> int:
    """Upper bound of Lemma 7: |E| <= n(n-1)/2 - n + omega."""
    n = num_vertices
    return n * (n - 1) // 2 - n + clique_size


def verify_lemma7(graph: Graph) -> bool:
    """Check Lemma 7 on a concrete graph (exact clique computation)."""
    omega = max_clique_size(graph)
    if graph.num_vertices == 0:
        return True
    return graph.num_edges <= lemma7_edge_bound(graph.num_vertices, omega)


def density(graph: Graph) -> float:
    """Edge density |E| / C(n, 2)."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return graph.num_edges / (n * (n - 1) / 2)
