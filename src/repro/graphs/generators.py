"""Graph generators for the benchmark workloads.

Beyond the generic G(n, p), the harness needs:

* dense graphs with the paper's minimum-degree condition
  (degree >= n - 14) — the CLIQUE variant's instance family;
* planted-clique graphs where omega is known by construction, so the
  QO_N / QO_H gap experiments can dial YES/NO instances directly
  without running the SAT pipeline;
* arbitrary connected graphs with an exact edge budget — the auxiliary
  graph G2 of the sparse reductions (Section 6).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import require


def complete_graph(n: int) -> Graph:
    """K_n."""
    return Graph(n, list(itertools.combinations(range(n), 2)))


def gnp_random_graph(n: int, p: float, rng: RngLike = None) -> Graph:
    """Erdos–Renyi G(n, p)."""
    require(0.0 <= p <= 1.0, "p must lie in [0, 1]")
    generator = make_rng(rng)
    edges = [
        (u, v)
        for u, v in itertools.combinations(range(n), 2)
        if generator.random() < p
    ]
    return Graph(n, edges)


def dense_min_degree_graph(
    n: int, deficit: int = 13, rng: RngLike = None
) -> Graph:
    """A random graph where every vertex misses at most ``deficit`` edges.

    Start from K_n and delete, per vertex, at most ``deficit // 2``
    randomly chosen incident edges (each deletion debits both
    endpoints, hence the halving keeps the guarantee).
    """
    require(n >= 1, "need at least one vertex")
    generator = make_rng(rng)
    missing: set[Tuple[int, int]] = set()
    budget = [deficit // 2 for _ in range(n)]
    candidates = list(itertools.combinations(range(n), 2))
    generator.shuffle(candidates)
    for u, v in candidates:
        if budget[u] > 0 and budget[v] > 0 and generator.random() < 0.5:
            missing.add((u, v))
            budget[u] -= 1
            budget[v] -= 1
    edges = [
        (u, v)
        for u, v in itertools.combinations(range(n), 2)
        if (u, v) not in missing
    ]
    return Graph(n, edges)


def planted_clique_graph(
    n: int,
    clique_size: int,
    deficit: int = 13,
    rng: RngLike = None,
) -> Tuple[Graph, List[int]]:
    """A dense graph whose maximum clique is (w.h.p. exactly) planted.

    Vertices ``0 .. clique_size-1`` form a clique; outside the planted
    set, each vertex is *non*-adjacent to a few clique vertices so the
    planted clique cannot be extended, while the degree deficit stays
    within ``deficit``.  Returns ``(graph, planted_vertices)``.

    Note the maximum clique can still exceed ``clique_size`` when the
    non-planted part is large and dense; callers that need omega
    exactly should verify with :func:`repro.graphs.clique.max_clique`
    (the benchmark harness does).
    """
    require(1 <= clique_size <= n, "clique_size must lie in [1, n]")
    generator = make_rng(rng)
    missing: set[Tuple[int, int]] = set()
    removed_from: dict[int, int] = {v: 0 for v in range(n)}
    for outsider in range(clique_size, n):
        # Break adjacency with one random planted vertex (if budget allows).
        target = generator.randrange(clique_size)
        if removed_from[target] < deficit and removed_from[outsider] < deficit:
            pair = (min(outsider, target), max(outsider, target))
            if pair not in missing:
                missing.add(pair)
                removed_from[target] += 1
                removed_from[outsider] += 1
    # Thin the outsider-outsider edges a little as well.
    outsiders = list(range(clique_size, n))
    for u, v in itertools.combinations(outsiders, 2):
        if (
            removed_from[u] < deficit
            and removed_from[v] < deficit
            and generator.random() < 0.4
        ):
            missing.add((u, v))
            removed_from[u] += 1
            removed_from[v] += 1
    edges = [
        (u, v)
        for u, v in itertools.combinations(range(n), 2)
        if (u, v) not in missing
    ]
    return Graph(n, edges), list(range(clique_size))


def connected_graph_with_edges(
    num_vertices: int, num_edges: int, rng: RngLike = None
) -> Graph:
    """A connected graph with exactly ``num_edges`` edges.

    Builds a random spanning path (guaranteeing connectivity with
    ``n - 1`` edges) and adds random chords up to the budget.  This is
    the auxiliary graph G2 of the sparse reductions f_{N,e} / f_{H,e}.
    """
    n = num_vertices
    require(n >= 1, "need at least one vertex")
    min_edges = n - 1
    max_edges = n * (n - 1) // 2
    require(
        min_edges <= num_edges <= max_edges,
        f"a connected graph on {n} vertices needs between {min_edges} "
        f"and {max_edges} edges, got {num_edges}",
    )
    generator = make_rng(rng)
    order = list(range(n))
    generator.shuffle(order)
    edges = {
        (min(order[i], order[i + 1]), max(order[i], order[i + 1]))
        for i in range(n - 1)
    }
    candidates = [
        (u, v)
        for u, v in itertools.combinations(range(n), 2)
        if (u, v) not in edges
    ]
    generator.shuffle(candidates)
    for pair in candidates:
        if len(edges) >= num_edges:
            break
        edges.add(pair)
    return Graph(n, sorted(edges))
