"""Command-line interface.

Usage (installed as ``python -m repro``):

    python -m repro gen --family chain --relations 6 --out q.json
    python -m repro optimize q.json --algorithm dp
    python -m repro reduce-sat --variables 6 --clauses 16 --satisfiable \\
        --target qon --out hard.json
    python -m repro gap-report --relations 10 --alpha-exp 20

Instances travel as the JSON format of :mod:`repro.io`.
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction
from typing import List, Optional

from repro import io
from repro.core.chains import hardness_chain_qoh, hardness_chain_qon
from repro.core.gap import gap_factor_log2, k_cd_log2, polylog_budget_log2
from repro.joinopt.instance import QONInstance
from repro.joinopt.optimizers import (
    branch_and_bound,
    dp_optimal,
    exhaustive_optimal,
    genetic_algorithm,
    greedy_min_cost,
    greedy_min_size,
    ikkbz,
    iterative_improvement,
    random_sampling,
    simulated_annealing,
)
from repro.engine import execute_sequence, generate_database
from repro.engine.data import harmonize_sizes
from repro.joinopt.explain import explain
from repro.sat.gapfamilies import no_instance, yes_instance
from repro.utils.lognum import log2_of
from repro.workloads import (
    chain_query,
    clique_query,
    cycle_query,
    qon_gap_pair,
    random_query,
    star_query,
)

_FAMILIES = {
    "chain": chain_query,
    "star": star_query,
    "cycle": cycle_query,
    "clique": clique_query,
    "random": random_query,
}

_ALGORITHMS = {
    "exhaustive": exhaustive_optimal,
    "bnb": branch_and_bound,
    "dp": dp_optimal,
    "ikkbz": ikkbz,
    "greedy-cost": greedy_min_cost,
    "greedy-size": greedy_min_size,
    "iterative": iterative_improvement,
    "annealing": simulated_annealing,
    "sampling": random_sampling,
    "genetic": genetic_algorithm,
}


def _cmd_gen(args: argparse.Namespace) -> int:
    factory = _FAMILIES[args.family]
    instance = factory(
        args.relations, rng=args.seed,
        size_max=args.size_max, domain_max=args.domain_max,
    )
    io.save(instance, args.out)
    print(f"wrote {args.family} query with {args.relations} relations to {args.out}")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    instance = io.load(args.instance)
    if not isinstance(instance, QONInstance):
        print("optimize currently supports QO_N instances", file=sys.stderr)
        return 2
    algorithm = _ALGORITHMS[args.algorithm]
    result = algorithm(instance)
    print(f"algorithm:  {result.optimizer}")
    print(f"sequence:   {list(result.sequence)}")
    print(f"cost:       2^{log2_of(result.cost):.3f}")
    print(f"exact:      {result.is_exact}")
    print(f"explored:   {result.explored}")
    return 0


def _cmd_reduce_sat(args: argparse.Namespace) -> int:
    if args.satisfiable:
        formula = yes_instance(args.variables, args.clauses, rng=args.seed)
    else:
        cores = max(1, args.clauses // 8)
        formula = no_instance(cores)
    if args.target == "qon":
        chain = hardness_chain_qon(formula, alpha=args.alpha)
        instance = chain.instance
        n = chain.fn_step.n
    else:
        chain = hardness_chain_qoh(formula, alpha=args.alpha)
        instance = chain.instance
        n = chain.fh_step.n
    io.save(instance, args.out)
    print(
        f"reduced {'YES' if args.satisfiable else 'NO'} 3SAT(13) formula "
        f"({formula.formula.num_vars} vars, {formula.formula.num_clauses} "
        f"clauses) to a {args.target} instance on {n} relations -> {args.out}"
    )
    return 0


def _cmd_gap_report(args: argparse.Namespace) -> int:
    n = args.relations
    k_yes = n - 2
    k_no = 2 + (k_yes % 2)
    alpha = 4**args.alpha_exp
    pair = qon_gap_pair(n, k_yes, k_no, alpha=alpha)
    fn = pair.yes_reduction
    k_log2 = float(
        k_cd_log2(fn.alpha_log2, log2_of(fn.edge_access_cost), fn.k_yes, fn.k_no)
    )
    gap_log2 = float(gap_factor_log2(fn.alpha_log2, fn.k_yes, fn.k_no))
    print(f"f_N gap report (n={n}, alpha=4^{args.alpha_exp})")
    print(f"  k_yes / k_no:       {fn.k_yes} / {fn.k_no}")
    print(f"  log2 K_{{c,d}}:       {k_log2:.1f}")
    print(f"  log2 gap factor:    {gap_log2:.1f}")
    for delta in (0.9, 0.5, 0.25):
        budget = polylog_budget_log2(k_log2, delta=delta)
        verdict = "gap wins" if gap_log2 > budget else "budget wins"
        print(
            f"  vs 2^{{log^{{{1 - delta:.2f}}} K}} budget: "
            f"{budget:.1f}  -> {verdict}"
        )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    instance = io.load(args.instance)
    if not isinstance(instance, QONInstance):
        print("explain currently supports QO_N instances", file=sys.stderr)
        return 2
    result = _ALGORITHMS[args.algorithm](instance)
    print(explain(instance, result.sequence))
    return 0


def _cmd_execute(args: argparse.Namespace) -> int:
    instance = io.load(args.instance)
    if not isinstance(instance, QONInstance):
        print("execute currently supports QO_N instances", file=sys.stderr)
        return 2
    if args.harmonize:
        instance = harmonize_sizes(instance)
    database = generate_database(instance)
    result = _ALGORITHMS[args.algorithm](instance)
    trace = execute_sequence(database, result.sequence)
    from repro.joinopt.cost import intermediate_sizes, join_costs

    predicted_n = intermediate_sizes(instance, result.sequence)
    predicted_h = join_costs(instance, result.sequence)
    print(f"sequence: {list(result.sequence)}  (exactness guaranteed: {database.exact})")
    print(f"{'join':<6}{'N model':>12}{'N real':>12}{'H model':>12}{'H real':>12}")
    for index, join in enumerate(trace.joins):
        print(
            f"J_{index + 1:<4}{str(predicted_n[index]):>12}"
            f"{join.output_rows:>12}{str(predicted_h[index]):>12}"
            f"{join.probe_rows:>12}"
        )
    print(f"result rows: {trace.result_rows}")
    return 0


def _cmd_scorecard(args: argparse.Namespace) -> int:
    from repro.core.scorecard import build_scorecard

    scorecard = build_scorecard()
    print(scorecard.render())
    return 0 if scorecard.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On the Complexity of Approximate Query "
            "Optimization' (PODS 2002)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    gen = subparsers.add_parser("gen", help="generate a query instance")
    gen.add_argument("--family", choices=sorted(_FAMILIES), default="random")
    gen.add_argument("--relations", type=int, default=8)
    gen.add_argument("--size-max", type=int, default=100_000)
    gen.add_argument("--domain-max", type=int, default=10_000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=_cmd_gen)

    optimize = subparsers.add_parser("optimize", help="optimize an instance")
    optimize.add_argument("instance")
    optimize.add_argument(
        "--algorithm", choices=sorted(_ALGORITHMS), default="dp"
    )
    optimize.set_defaults(func=_cmd_optimize)

    reduce_sat = subparsers.add_parser(
        "reduce-sat", help="run the hardness reduction chain"
    )
    reduce_sat.add_argument("--variables", type=int, default=6)
    reduce_sat.add_argument("--clauses", type=int, default=16)
    reduce_sat.add_argument(
        "--satisfiable", action="store_true", help="YES-promise source"
    )
    reduce_sat.add_argument("--target", choices=("qon", "qoh"), default="qon")
    reduce_sat.add_argument("--alpha", type=int, default=4)
    reduce_sat.add_argument("--seed", type=int, default=0)
    reduce_sat.add_argument("--out", required=True)
    reduce_sat.set_defaults(func=_cmd_reduce_sat)

    explain_cmd = subparsers.add_parser(
        "explain", help="print the execution plan of an optimizer's choice"
    )
    explain_cmd.add_argument("instance")
    explain_cmd.add_argument(
        "--algorithm", choices=sorted(_ALGORITHMS), default="dp"
    )
    explain_cmd.set_defaults(func=_cmd_explain)

    execute_cmd = subparsers.add_parser(
        "execute", help="materialize synthetic data and run the plan"
    )
    execute_cmd.add_argument("instance")
    execute_cmd.add_argument(
        "--algorithm", choices=sorted(_ALGORITHMS), default="dp"
    )
    execute_cmd.add_argument(
        "--harmonize",
        action="store_true",
        help="round sizes up so the estimates are exact",
    )
    execute_cmd.set_defaults(func=_cmd_execute)

    report = subparsers.add_parser(
        "gap-report", help="print the Theorem 9 gap quantities"
    )
    report.add_argument("--relations", type=int, default=12)
    report.add_argument("--alpha-exp", type=int, default=12)
    report.set_defaults(func=_cmd_gap_report)

    scorecard = subparsers.add_parser(
        "scorecard", help="verify every theorem's fast checks"
    )
    scorecard.set_defaults(func=_cmd_scorecard)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
