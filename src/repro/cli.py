"""Command-line interface.

Usage (installed as ``python -m repro``):

    python -m repro gen --family chain --relations 6 --out q.json
    python -m repro optimize q.json --algorithm dp
    python -m repro reduce-sat --variables 6 --clauses 16 --satisfiable \\
        --target qon --out hard.json
    python -m repro gap-report --relations 10 --alpha-exp 20
    python -m repro sweep --family random --n 6,8 --algorithms dp,greedy-cost
    python -m repro lint src benchmarks examples

Instances travel as the JSON format of :mod:`repro.io`.  Every
subcommand speaks to the substrates exclusively through the
:mod:`repro.api` facade — lint rule ``RPR007`` enforces that this
module never imports optimizer or reduction internals directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import api, io
from repro.utils.lognum import log2_of

#: Workload families come from the public facade.
_FAMILIES = api.FAMILIES

#: Families that sweep the Theorem 9 YES/NO hardness pair ("qon" is the
#: substrate-named alias of the historical "gap").
_GAP_FAMILIES = ("gap", "qon")

#: QO_N algorithm names exposed on the CLI — the shared runtime
#: registry minus the QO_H and SQO-CP entries (those take
#: QOHInstance / SQOCPInstance inputs).
_ALGORITHMS = api.optimizer_names(substrate="qon")


def _require_qon(instance: object, command: str) -> bool:
    """Print the standard substrate error unless ``instance`` is QO_N."""
    if api.substrate_of(instance) == "qon":
        return True
    print(f"{command} currently supports QO_N instances", file=sys.stderr)
    return False


def _cmd_gen(args: argparse.Namespace) -> int:
    instance = api.generate(
        args.family, args.relations, seed=args.seed,
        size_max=args.size_max, domain_max=args.domain_max,
    )
    io.save(instance, args.out)
    print(f"wrote {args.family} query with {args.relations} relations to {args.out}")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    instance = io.load(args.instance)
    if not _require_qon(instance, "optimize"):
        return 2
    request = api.OptimizeRequest.build(instance, args.algorithm)
    result = api.optimize(request)
    print(f"algorithm:  {result.optimizer}")
    print(f"sequence:   {list(result.sequence)}")
    print(f"cost:       2^{log2_of(result.cost):.3f}")
    print(f"exact:      {result.is_exact}")
    print(f"explored:   {result.explored}")
    return 0


def _cmd_reduce_sat(args: argparse.Namespace) -> int:
    formula = api.gap_formula(
        args.variables, args.clauses,
        satisfiable=args.satisfiable, seed=args.seed,
    )
    chain = api.reduce(args.target, formula, alpha=args.alpha)
    instance = chain.instance
    n = chain.fn_step.n if args.target == "qon" else chain.fh_step.n
    io.save(instance, args.out)
    print(
        f"reduced {'YES' if args.satisfiable else 'NO'} 3SAT(13) formula "
        f"({formula.formula.num_vars} vars, {formula.formula.num_clauses} "
        f"clauses) to a {args.target} instance on {n} relations -> {args.out}"
    )
    return 0


def _cmd_gap_report(args: argparse.Namespace) -> int:
    numbers = api.gap_report_numbers(args.relations, args.alpha_exp)
    print(f"f_N gap report (n={args.relations}, alpha=4^{args.alpha_exp})")
    print(f"  k_yes / k_no:       {numbers['k_yes']} / {numbers['k_no']}")
    print(f"  log2 K_{{c,d}}:       {numbers['k_cd_log2']:.1f}")
    print(f"  log2 gap factor:    {numbers['gap_log2']:.1f}")
    for entry in numbers["budgets"]:
        verdict = "gap wins" if entry["gap_wins"] else "budget wins"
        print(
            f"  vs 2^{{log^{{{1 - entry['delta']:.2f}}} K}} budget: "
            f"{entry['budget_log2']:.1f}  -> {verdict}"
        )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    instance = io.load(args.instance)
    if not _require_qon(instance, "explain"):
        return 2
    print(api.explain_plan(instance, algorithm=args.algorithm))
    return 0


def _cmd_execute(args: argparse.Namespace) -> int:
    instance = io.load(args.instance)
    if not _require_qon(instance, "execute"):
        return 2
    report = api.execute_plan(
        instance, algorithm=args.algorithm, harmonize=args.harmonize
    )
    print(
        f"sequence: {list(report.result.sequence)}  "
        f"(exactness guaranteed: {report.exact})"
    )
    print(f"{'join':<6}{'N model':>12}{'N real':>12}{'H model':>12}{'H real':>12}")
    for index, (output_rows, probe_rows) in enumerate(report.joins):
        print(
            f"J_{index + 1:<4}{str(report.predicted_sizes[index]):>12}"
            f"{output_rows:>12}{str(report.predicted_costs[index]):>12}"
            f"{probe_rows:>12}"
        )
    print(f"result rows: {report.result_rows}")
    return 0


_RANDOMIZED = {"iterative", "annealing", "sampling", "genetic"}

#: Fast algorithms for --quick smoke runs.
_QUICK_ALGORITHMS = ["dp", "greedy-cost", "sampling"]


def _sweep_instances(
    args: argparse.Namespace,
) -> Tuple[List[Tuple[str, object]], Dict[str, int]]:
    """Build the labelled instance list and a label -> seed map."""
    instances: List[Tuple[str, object]] = []
    seeds: Dict[str, int] = {}
    for n in args.n_values:
        if args.family in _GAP_FAMILIES:
            if n < 6:  # k_yes = n-2 must clear k_no = 2 or 3
                raise SystemExit("gap family needs --n >= 6")
            k_yes = n - 2
            k_no = 2 + (k_yes % 2)
            pair = api.gap_pair(n, k_yes, k_no, alpha=4)
            for side, reduction in (
                ("yes", pair.yes_reduction), ("no", pair.no_reduction)
            ):
                label = f"gap-{side}-n{n}"
                instances.append((label, reduction.instance))
                seeds[label] = 0
            continue
        factory = _FAMILIES[args.family]
        for seed in range(args.seeds):
            label = f"{args.family}-n{n}-s{seed}"
            instances.append((label, factory(n, rng=seed)))
            seeds[label] = seed
    return instances, seeds


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        args.n_values = [int(part) for part in args.n.split(",") if part]
    except ValueError:
        print(
            f"--n expects a comma-separated list of integers, got {args.n!r}",
            file=sys.stderr,
        )
        return 2
    if not args.n_values:
        print("--n needs at least one instance size", file=sys.stderr)
        return 2
    if args.algorithms:
        names = [part for part in args.algorithms.split(",") if part]
    elif args.quick:
        names = list(_QUICK_ALGORITHMS)
    else:
        names = ["dp", "greedy-cost", "greedy-size", "iterative", "sampling"]
    unknown = [name for name in names if name not in _ALGORITHMS]
    if unknown:
        print(
            f"unknown algorithms: {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(_ALGORITHMS))})",
            file=sys.stderr,
        )
        return 2
    if args.quick:
        args.seeds = 1

    instances, seeds = _sweep_instances(args)

    if args.resume and args.journal is None:
        print("--resume requires --journal PATH", file=sys.stderr)
        return 2
    if args.retries < 1:
        print("--retries must be >= 1", file=sys.stderr)
        return 2
    if args.chunksize is not None and args.chunksize < 0:
        print("--chunksize must be >= 0", file=sys.stderr)
        return 2
    if args.registry_maxsize is not None and args.registry_maxsize < 0:
        print("--registry-maxsize must be >= 0", file=sys.stderr)
        return 2

    spec = api.SweepSpec.build(
        names,
        instances,
        params={
            (name, label): {"rng": seeds.get(label, 0)}
            for name in names if name in _RANDOMIZED
            for label, _instance in instances
        },
        workers=args.workers,
        cache=not args.no_cache,
        cache_maxsize=args.cache_maxsize,
        timeout=args.timeout,
        trace=args.trace_out is not None,
        retries=args.retries,
        backoff=args.backoff,
    )
    result = api.sweep(
        spec,
        journal=args.journal,
        resume=args.resume,
        chunksize=args.chunksize,
        registry_maxsize=args.registry_maxsize,
    )

    header = (
        f"{'instance':<16}{'algorithm':<14}{'log2 cost':>10}"
        f"{'explored':>10}{'ms':>9}{'hits':>7}{'misses':>8}"
    )
    print(header)
    print("-" * len(header))
    for outcome in result:
        if outcome.failure == "cancelled":
            shown = "CANCELLED"
        elif outcome.failure == "worker-died":
            shown = "DIED"
        elif outcome.timed_out:
            shown = "TIMEOUT"
        elif outcome.error:
            shown = "ERROR"
        else:
            shown = f"{log2_of(outcome.result.cost):.1f}"
        print(
            f"{outcome.label:<16}{outcome.optimizer:<14}{shown:>10}"
            f"{outcome.explored:>10}{outcome.wall_time * 1e3:>9.1f}"
            f"{outcome.cache.hits:>7}{outcome.cache.misses:>8}"
        )
        if outcome.error and not outcome.timed_out:
            print(f"    {outcome.error}")
    totals = result.cache_totals()
    print(
        f"\n{len(result)} tasks ({result.mode}, {result.workers} worker"
        f"{'s' if result.workers != 1 else ''}) in {result.wall_time:.2f}s | "
        f"cost evaluations: {totals.misses} | cache hits: {totals.hits} "
        f"(hit rate {totals.hit_rate:.1%}) | "
        f"peak subproblems: {totals.peak_size}"
    )
    if result.retries or result.recovered_workers or result.resumed:
        print(
            f"resilience: {result.resumed} tasks resumed from journal | "
            f"{result.retries} retries | "
            f"{result.recovered_workers} worker pools respawned"
        )
    if args.journal is not None:
        print(f"journal at {args.journal}")

    metrics_out = args.metrics_out
    if metrics_out is None:
        from pathlib import Path

        results_dir = Path("benchmarks") / "results"
        target = results_dir if results_dir.is_dir() else Path(".")
        metrics_out = target / "sweep-metrics.json"
    payload = api.sweep_metrics(
        result,
        grid={
            "family": args.family,
            "n": args.n_values,
            "seeds": args.seeds,
            "algorithms": names,
        },
    )
    path = api.write_metrics(payload, metrics_out)
    print(f"metrics written to {path}")

    if args.trace_out is not None:
        from repro.observability import hot_span, write_trace

        records = result.trace_records()
        trace_path = write_trace(
            records, args.trace_out,
            meta={
                "grid": payload["grid"],
                "mode": result.mode,
                "workers": result.workers,
            },
        )
        print(f"trace written to {trace_path} ({len(records)} spans)")
        hot = hot_span(records)
        if hot is not None:
            name, share = hot
            print(f"hottest span: {name} ({share:.1%} of sweep wall time)")
    return 0 if all(o.ok for o in result) else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.observability import (
        flame_report,
        hot_span,
        load_trace,
        summary_table,
    )
    from repro.utils.validation import ValidationError

    try:
        trace = load_trace(args.trace)
    except (OSError, ValidationError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    if trace.meta:
        parts = [f"{key}={value}" for key, value in sorted(trace.meta.items())]
        print(f"meta: {'  '.join(parts)}")
    print(f"{len(trace.records)} spans\n")
    if args.flat:
        print(summary_table(trace.records, top=args.top))
    else:
        print(flame_report(
            trace.records, max_depth=args.depth, min_share=args.min_share,
        ))
    hot = hot_span(trace.records)
    if hot is not None:
        name, share = hot
        print(f"\nhottest span: {name} ({share:.1%} of wall time)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    out = args.out
    if out is None:
        from pathlib import Path

        results_dir = Path("benchmarks") / "results"
        target = results_dir if results_dir.is_dir() else Path(".")
        if args.suite == "executor":
            name = (
                "BENCH_executor_smoke.json" if args.smoke
                else "BENCH_executor.json"
            )
        else:
            name = "BENCH_smoke.json" if args.smoke else "BENCH_perf.json"
        out = target / name
    payload = api.run_bench(
        smoke=args.smoke, seed=args.seed, out=out, suite=args.suite
    )
    kind = "smoke" if args.smoke else "full"
    print(f"repro bench ({args.suite} suite, {kind}, seed {args.seed})")
    for line in api.bench_summary_lines(payload):
        print(f"  {line}")
    print(f"bench results written to {out}")
    totals = payload["totals"]
    if args.suite == "executor":
        # Throughput is machine-dependent; CI diffs it warn-only.  The
        # hard gate here is the bit-identity cross-check.
        return 0 if totals["identical"] else 1
    return 0 if totals["identical"] and totals["meets_mult_target"] else 1


def _cmd_scorecard(args: argparse.Namespace) -> int:
    scorecard = api.scorecard()
    print(scorecard.render())
    return 0 if scorecard.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools import lint_paths, render_json, render_text
    from repro.devtools.reporter import render_rule_list

    if args.list_rules:
        print(render_rule_list())
        return 0
    select = None
    if args.select:
        select = [part for part in args.select.split(",") if part.strip()]
    try:
        report = lint_paths(args.paths or ["src"], select=select)
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


#: Default committed baseline file, used when it exists and no
#: ``--baseline`` was given.
_DEFAULT_BASELINE = "analysis-baseline.json"


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.devtools.analysis import (
        analyze_paths,
        load_baseline,
        raw_findings,
        render_analysis_json,
        render_analysis_text,
        render_pass_list,
        write_baseline,
    )

    if args.list_passes:
        print(render_pass_list())
        return 0
    paths = args.paths or ["src"]
    baseline = args.baseline
    if baseline is None and Path(_DEFAULT_BASELINE).is_file():
        baseline = _DEFAULT_BASELINE
    try:
        if args.update_baseline:
            target = baseline or _DEFAULT_BASELINE
            previous = (
                load_baseline(target) if Path(target).is_file() else ()
            )
            entries = write_baseline(
                target, raw_findings(paths), previous
            )
            print(f"{target}: {len(entries)} baselined finding"
                  f"{'s' if len(entries) != 1 else ''} written")
            return 0
        report = analyze_paths(paths, baseline=baseline)
    except (FileNotFoundError, OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.output == "json":
        print(render_analysis_json(report))
    else:
        print(render_analysis_text(report))
    return 0 if report.ok else 1


def _parse_address(text: str) -> object:
    """``host:port`` -> TCP tuple; anything else is an AF_UNIX path."""
    if "/" not in text and ":" in text:
        host, _colon, port = text.rpartition(":")
        if host and port.isdigit():
            return (host, int(port))
    return text


def _format_address(address: object) -> str:
    if isinstance(address, str):
        return address
    host, port = address  # type: ignore[misc]
    return f"{host}:{port}"


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.service import OptimizationServer, ServerConfig

    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.max_queue < 1:
        print("--max-queue must be >= 1", file=sys.stderr)
        return 2
    if args.metrics_interval <= 0:
        print("--metrics-interval must be > 0", file=sys.stderr)
        return 2
    if args.slow_ms is not None and args.slow_ms < 0:
        print("--slow-ms must be >= 0", file=sys.stderr)
        return 2
    server = OptimizationServer(ServerConfig(
        address=_parse_address(args.socket),  # type: ignore[arg-type]
        workers=args.workers,
        max_queue=args.max_queue,
        retry_after_s=args.retry_after,
        result_cache_size=args.cache_size,
        instance_cache_size=args.instance_cache_size,
        worker_cache_maxsize=args.cost_cache_maxsize,
        metrics_out=args.metrics_out,
        metrics_interval_s=args.metrics_interval,
        events_out=args.events_out,
        slow_ms=args.slow_ms,
    ))
    address = server.start()
    print(
        f"repro service (api {api.API_VERSION}) listening on "
        f"{_format_address(address)} | {args.workers} worker"
        f"{'s' if args.workers != 1 else ''}, queue {args.max_queue}",
        flush=True,
    )
    final = server.serve_forever()
    print(json.dumps(final, sort_keys=True))
    return 0


def _cmd_request(args: argparse.Namespace) -> int:
    import json

    if args.capabilities:
        if args.connect is None:
            print(json.dumps(api.capabilities(), indent=2, sort_keys=True))
            return 0
        from repro.service import ServiceClient

        with ServiceClient(_parse_address(args.connect)) as client:  # type: ignore[arg-type]
            print(json.dumps(client.capabilities, indent=2, sort_keys=True))
        return 0

    if args.connect is None:
        print("repro request needs --connect ADDRESS (or --capabilities)",
              file=sys.stderr)
        return 2
    from repro.service import ServiceClient, ServiceUnavailable

    with ServiceClient(_parse_address(args.connect)) as client:  # type: ignore[arg-type]
        if args.stats:
            from repro.service import validate_stats

            stats = client.stats()
            validate_stats(stats)
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        if args.instance is None:
            print("repro request needs an instance file "
                  "(or --stats / --capabilities)", file=sys.stderr)
            return 2
        instance = io.load(args.instance)
        request = api.OptimizeRequest.build(
            instance, args.algorithm, no_cache=args.no_cache
        )
        try:
            reply = client.optimize(request, max_wait_s=args.max_wait)
        except ServiceUnavailable as exc:
            print(str(exc), file=sys.stderr)
            return 3
    if args.json:
        print(reply.to_json())
        return 0 if reply.ok else 1
    if not reply.ok:
        print(f"request failed: {reply.error}", file=sys.stderr)
        return 1
    result = reply.result
    source = "cache" if reply.cached else (
        "coalesced" if reply.coalesced else "computed"
    )
    print(f"algorithm:  {result.optimizer}")
    print(f"sequence:   {list(result.sequence)}")
    print(f"cost:       2^{log2_of(result.cost):.3f}")
    print(f"exact:      {result.is_exact}")
    print(f"explored:   {result.explored}")
    print(f"served:     {source} in {reply.wall_time_s * 1e3:.1f} ms "
          f"(fingerprint {(reply.fingerprint or '')[:12]})")
    return 0


def _top_lines(snapshot: Dict[str, object],
               previous: Optional[Dict[str, object]]) -> List[str]:
    """Render one ``repro top`` frame from a metrics snapshot.

    ``previous`` (the prior poll) turns counter totals into rates;
    the first frame shows totals only.
    """
    from repro.observability import snapshot_percentile

    counters = snapshot.get("counters")
    gauges = snapshot.get("gauges")
    histograms = snapshot.get("histograms")
    assert isinstance(counters, dict)
    assert isinstance(gauges, dict)
    assert isinstance(histograms, dict)

    def rate(name: str) -> str:
        if previous is None:
            return ""
        prev_counters = previous.get("counters")
        assert isinstance(prev_counters, dict)
        span_s = float(snapshot["ts"]) - float(previous["ts"])  # type: ignore[arg-type]
        if span_s <= 0:
            return ""
        delta = int(counters.get(name, 0)) - int(prev_counters.get(name, 0))
        return f" ({delta / span_s:.1f}/s)"

    received = int(counters.get("service.received", 0))
    lines = [
        f"repro top | uptime {float(snapshot['uptime_s']):.1f}s "  # type: ignore[arg-type]
        f"| seq {snapshot['seq']}",
        f"queue {int(gauges.get('service.queue_depth', 0))} "
        f"| in-flight {int(gauges.get('service.in_flight', 0))} "
        f"| workers {int(gauges.get('service.workers', 0))}",
        f"received  {received}{rate('service.received')}",
    ]
    for name in ("computed", "cache_hits", "coalesced", "rejected",
                 "errors"):
        total = int(counters.get(f"service.{name}", 0))
        share = f" {100.0 * total / received:.0f}%" if received else ""
        lines.append(f"  {name:<10} {total}{share}"
                     f"{rate(f'service.{name}')}")
    latency = histograms.get("service.latency_ms")
    if isinstance(latency, dict) and int(latency.get("count", 0)) > 0:
        p50 = snapshot_percentile(latency, 50)
        p99 = snapshot_percentile(latency, 99)
        lines.append(
            f"latency   p50<={p50:.0f}ms p99<={p99:.0f}ms "
            f"over {int(latency['count'])} requests"
        )
    runtime = {
        name.split(".", 1)[1]: value
        for name, value in counters.items()
        if isinstance(name, str) and name.startswith("runtime.")
    }
    if runtime:
        lines.append("runtime   " + " ".join(
            f"{key}={value}" for key, value in sorted(runtime.items())
        ))
    compiles = int(counters.get("perf.kernel_compiles", 0))
    if compiles:
        lines.append(f"kernels   compiles={compiles}"
                     f"{rate('perf.kernel_compiles')}")
    if "service.events_logged" in gauges:
        logged = int(gauges["service.events_logged"])  # type: ignore[arg-type]
        per_s = ""
        if previous is not None:
            prev_gauges = previous.get("gauges")
            assert isinstance(prev_gauges, dict)
            span_s = float(snapshot["ts"]) - float(previous["ts"])  # type: ignore[arg-type]
            if span_s > 0:
                delta = logged - int(prev_gauges.get("service.events_logged", 0))
                per_s = f" ({delta / span_s:.1f}/s)"
        lines.append(f"events    logged={logged}{per_s}")
    return lines


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.observability import validate_metrics
    from repro.service import ServiceClient, ServiceError

    if args.interval <= 0:
        print("--interval must be > 0", file=sys.stderr)
        return 2
    iterations = 1 if args.once else args.iterations
    if iterations < 0:
        print("--iterations must be >= 0 (0 = forever)", file=sys.stderr)
        return 2
    try:
        client = ServiceClient(_parse_address(args.connect))  # type: ignore[arg-type]
    except (OSError, ServiceError) as exc:
        print(f"cannot reach daemon at {args.connect}: {exc}",
              file=sys.stderr)
        return 3
    previous: Optional[Dict[str, object]] = None
    shown = 0
    try:
        while True:
            try:
                snapshot = client.metrics()
            except (OSError, ServiceError) as exc:
                print(f"metrics poll failed: {exc}", file=sys.stderr)
                return 3
            problems = validate_metrics(snapshot)
            if problems:
                for problem in problems:
                    print(f"invalid snapshot: {problem}", file=sys.stderr)
                return 1
            for line in _top_lines(snapshot, previous):
                print(line)
            previous = snapshot
            shown += 1
            if iterations and shown >= iterations:
                return 0
            print(flush=True)
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.observability import (
        diff_metrics,
        load_metrics_file,
        summarize_metrics,
    )

    try:
        snapshots = load_metrics_file(args.file)
    except (OSError, ValueError) as exc:
        print(f"cannot load {args.file}: {exc}", file=sys.stderr)
        return 1
    if args.diff is not None:
        try:
            others = load_metrics_file(args.diff)
        except (OSError, ValueError) as exc:
            print(f"cannot load {args.diff}: {exc}", file=sys.stderr)
            return 1
        try:
            deltas = diff_metrics(snapshots[-1], others[-1])
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        for name in sorted(deltas):
            print(f"{name} +{deltas[name]}")
        return 0
    print(summarize_metrics(snapshots))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On the Complexity of Approximate Query "
            "Optimization' (PODS 2002)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    gen = subparsers.add_parser("gen", help="generate a query instance")
    gen.add_argument("--family", choices=sorted(_FAMILIES), default="random")
    gen.add_argument("--relations", type=int, default=8)
    gen.add_argument("--size-max", type=int, default=100_000)
    gen.add_argument("--domain-max", type=int, default=10_000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=_cmd_gen)

    optimize = subparsers.add_parser("optimize", help="optimize an instance")
    optimize.add_argument("instance")
    optimize.add_argument(
        "--algorithm", choices=sorted(_ALGORITHMS), default="dp"
    )
    optimize.set_defaults(func=_cmd_optimize)

    reduce_sat = subparsers.add_parser(
        "reduce-sat", help="run the hardness reduction chain"
    )
    reduce_sat.add_argument("--variables", type=int, default=6)
    reduce_sat.add_argument("--clauses", type=int, default=16)
    reduce_sat.add_argument(
        "--satisfiable", action="store_true", help="YES-promise source"
    )
    reduce_sat.add_argument("--target", choices=("qon", "qoh"), default="qon")
    reduce_sat.add_argument("--alpha", type=int, default=4)
    reduce_sat.add_argument("--seed", type=int, default=0)
    reduce_sat.add_argument("--out", required=True)
    reduce_sat.set_defaults(func=_cmd_reduce_sat)

    explain_cmd = subparsers.add_parser(
        "explain", help="print the execution plan of an optimizer's choice"
    )
    explain_cmd.add_argument("instance")
    explain_cmd.add_argument(
        "--algorithm", choices=sorted(_ALGORITHMS), default="dp"
    )
    explain_cmd.set_defaults(func=_cmd_explain)

    execute_cmd = subparsers.add_parser(
        "execute", help="materialize synthetic data and run the plan"
    )
    execute_cmd.add_argument("instance")
    execute_cmd.add_argument(
        "--algorithm", choices=sorted(_ALGORITHMS), default="dp"
    )
    execute_cmd.add_argument(
        "--harmonize",
        action="store_true",
        help="round sizes up so the estimates are exact",
    )
    execute_cmd.set_defaults(func=_cmd_execute)

    report = subparsers.add_parser(
        "gap-report", help="print the Theorem 9 gap quantities"
    )
    report.add_argument("--relations", type=int, default=12)
    report.add_argument("--alpha-exp", type=int, default=12)
    report.set_defaults(func=_cmd_gap_report)

    scorecard = subparsers.add_parser(
        "scorecard", help="verify every theorem's fast checks"
    )
    scorecard.set_defaults(func=_cmd_scorecard)

    bench = subparsers.add_parser(
        "bench",
        help="run the pinned perf microbenchmarks (kernel vs reference "
        "cost path) and emit repro.bench/1 JSON",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="small fast grid for CI smoke runs",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--suite",
        choices=("gap-families", "executor"),
        default="gap-families",
        help="'gap-families' benchmarks the cost kernels; 'executor' "
        "benchmarks sweep dispatch throughput (serial vs legacy pool "
        "vs chunked registry dispatch)",
    )
    bench.add_argument(
        "--out", default=None,
        help="bench JSON path (default: benchmarks/results/BENCH_perf.json"
        " — BENCH_smoke.json with --smoke, BENCH_executor*.json for the "
        "executor suite — when that directory exists)",
    )
    bench.set_defaults(func=_cmd_bench)

    sweep = subparsers.add_parser(
        "sweep",
        help="run an optimizer x instance grid through the cached "
        "parallel runner and emit metrics JSON",
    )
    sweep.add_argument(
        "--family",
        choices=sorted(_FAMILIES) + ["gap", "qon"],
        default="random",
        help="workload family; 'gap' (alias 'qon') sweeps the "
        "Theorem 9 YES/NO pair",
    )
    sweep.add_argument(
        "--n", default="6,8",
        help="comma-separated instance sizes, e.g. 4,6,8",
    )
    sweep.add_argument("--seeds", type=int, default=2,
                       help="instances per size (ignored for gap)")
    sweep.add_argument(
        "--algorithms",
        help="comma-separated algorithm names "
        f"(default depends on --quick; choose from "
        f"{', '.join(sorted(_ALGORITHMS))})",
    )
    sweep.add_argument(
        "--workers", type=int, default=None,
        help=f"pool size (default: min(cores - 1, 8) = "
        f"{api.default_workers()}; 1 forces serial)",
    )
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-task wall-clock budget in seconds")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable memoization (evaluations still counted)")
    sweep.add_argument(
        "--cache-maxsize", type=int, default=None,
        help="bound the cost cache (LRU) at this many entries",
    )
    sweep.add_argument(
        "--chunksize", type=int, default=None,
        help="tasks per dispatched chunk (default: deterministic "
        "auto heuristic; 0 forces legacy per-task dispatch). Never "
        "changes results, only throughput",
    )
    sweep.add_argument(
        "--registry-maxsize", type=int, default=None,
        help="bound each worker's live decoded-instance LRU "
        "(default: unbounded; evicted instances re-decode on demand)",
    )
    sweep.add_argument("--metrics-out", default=None,
                       help="metrics JSON path (default: benchmarks/results/"
                       "sweep-metrics.json when that directory exists)")
    sweep.add_argument("--quick", action="store_true",
                       help="small smoke grid: fast algorithms, one seed")
    sweep.add_argument(
        "--trace-out", default=None,
        help="also record a repro.trace/1 span tree (JSONL) at this path",
    )
    sweep.add_argument(
        "--journal", default=None,
        help="append an fsynced repro.journal/1 record per completed "
        "task at this path (enables crash-safe resumption)",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="skip tasks already completed in --journal and merge "
        "their stored outcomes bit-identically",
    )
    sweep.add_argument(
        "--retries", type=int, default=1,
        help="total attempts per task (default 1 = no retries)",
    )
    sweep.add_argument(
        "--backoff", type=float, default=0.0,
        help="base seconds between attempts, doubling per retry "
        "(deterministic, no jitter)",
    )
    sweep.set_defaults(func=_cmd_sweep)

    trace = subparsers.add_parser(
        "trace",
        help="render a repro.trace/1 file (from sweep --trace-out) as a "
        "where-did-the-time-go report",
    )
    trace.add_argument("trace", help="trace JSONL path")
    trace.add_argument(
        "--flat", action="store_true",
        help="aggregate by span name instead of the nested flame view",
    )
    trace.add_argument("--depth", type=int, default=None,
                       help="limit flame view nesting depth")
    trace.add_argument(
        "--min-share", type=float, default=0.0,
        help="hide flame rows below this share of total time (e.g. 0.01)",
    )
    trace.add_argument("--top", type=int, default=None,
                       help="limit --flat rows to the N hottest span names")
    trace.set_defaults(func=_cmd_trace)

    lint = subparsers.add_parser(
        "lint",
        help="run the project invariant linter (RPR rules) over "
        "files/directories",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json follows the repro.lint/1 schema)",
    )
    lint.add_argument(
        "--select",
        help="comma-separated rule codes to run (default: all rules)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    lint.set_defaults(func=_cmd_lint)

    analyze = subparsers.add_parser(
        "analyze",
        help="run the whole-program analyzer (exactness taint, lock "
        "discipline, schema registry) over files/directories",
    )
    analyze.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (default: src)",
    )
    analyze.add_argument(
        "--output", choices=("text", "json"), default="text",
        help="report format (json follows the repro.analysis/1 schema)",
    )
    analyze.add_argument(
        "--baseline", default=None,
        help="baseline file of accepted findings (default: "
        f"{_DEFAULT_BASELINE} when present)",
    )
    analyze.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings "
        "(preserving reasons of kept entries) and exit 0",
    )
    analyze.add_argument(
        "--list-passes", action="store_true",
        help="list the analyzer finding codes and exit",
    )
    analyze.set_defaults(func=_cmd_analyze)

    serve = subparsers.add_parser(
        "serve",
        help="run the optimization service daemon (repro.rpc/1 over a "
        "local socket) with request dedup, result caching and "
        "admission control",
    )
    serve.add_argument(
        "--socket", default="127.0.0.1:0",
        help="where to listen: a unix socket path, or host:port "
        "(port 0 picks a free port; default 127.0.0.1:0)",
    )
    serve.add_argument("--workers", type=int, default=2,
                       help="worker threads = max in-flight computations")
    serve.add_argument(
        "--max-queue", type=int, default=32,
        help="pending requests admitted beyond the in-flight ones; "
        "beyond this, requests are rejected with a retry-after reply",
    )
    serve.add_argument("--retry-after", type=float, default=0.05,
                       help="retry hint (seconds) on rejection replies")
    serve.add_argument(
        "--cache-size", type=int, default=256,
        help="result-cache entries (0 disables result caching)",
    )
    serve.add_argument(
        "--instance-cache-size", type=int, default=64,
        help="decoded instances kept alive for compiled-kernel reuse",
    )
    serve.add_argument(
        "--cost-cache-maxsize", type=int, default=None,
        help="bound each worker's cost cache (LRU) at this many entries",
    )
    serve.add_argument(
        "--metrics-out", default=None,
        help="append repro.metrics/1 snapshot lines to this file "
        "while serving (final snapshot written on shutdown)",
    )
    serve.add_argument(
        "--metrics-interval", type=float, default=1.0,
        help="seconds between exported metrics snapshots",
    )
    serve.add_argument(
        "--events-out", default=None,
        help="append repro.events/1 operational events to this file",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=None,
        help="emit a sampled service.slow_request event for requests "
        "at or above this wall time",
    )
    serve.set_defaults(func=_cmd_serve)

    request_cmd = subparsers.add_parser(
        "request",
        help="send one typed request to a running service daemon "
        "(or print capabilities)",
    )
    request_cmd.add_argument(
        "instance", nargs="?", default=None,
        help="instance JSON file to optimize",
    )
    request_cmd.add_argument(
        "--connect", default=None,
        help="daemon address: unix socket path or host:port",
    )
    request_cmd.add_argument(
        "--algorithm", choices=api.optimizer_names(), default="dp",
    )
    request_cmd.add_argument(
        "--no-cache", action="store_true",
        help="bypass the server's result cache for this request",
    )
    request_cmd.add_argument(
        "--capabilities", action="store_true",
        help="print the capability payload (the server's with "
        "--connect, the local facade's otherwise) and exit",
    )
    request_cmd.add_argument(
        "--stats", action="store_true",
        help="print the server's repro.stats/1 snapshot and exit",
    )
    request_cmd.add_argument(
        "--max-wait", type=float, default=60.0,
        help="give up after being backpressured for this many seconds",
    )
    request_cmd.add_argument(
        "--json", action="store_true",
        help="print the raw repro.reply/1 JSON instead of the summary",
    )
    request_cmd.set_defaults(func=_cmd_request)

    top = subparsers.add_parser(
        "top",
        help="live daemon telemetry: poll a running server's metrics "
        "op and render queue depth, throughput and latency",
    )
    top.add_argument(
        "--connect", required=True,
        help="daemon address: unix socket path or host:port",
    )
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between polls (default 2)",
    )
    top.add_argument(
        "--iterations", type=int, default=0,
        help="stop after this many frames (0 = run until interrupted)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print one frame and exit (same as --iterations 1)",
    )
    top.set_defaults(func=_cmd_top)

    metrics_cmd = subparsers.add_parser(
        "metrics",
        help="validate and summarize an exported repro.metrics/1 "
        "snapshot file, or diff two of them",
    )
    metrics_cmd.add_argument(
        "file", help="metrics JSONL file written by repro serve "
        "--metrics-out (or a TelemetryExporter)",
    )
    metrics_cmd.add_argument(
        "--diff", default=None, metavar="LATER_FILE",
        help="print counter movement from FILE's last snapshot to "
        "LATER_FILE's last snapshot",
    )
    metrics_cmd.set_defaults(func=_cmd_metrics)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
