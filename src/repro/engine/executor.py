"""Left-deep nested-loops execution with work counters.

Executes a join sequence against a :class:`SyntheticDatabase` for
real: the running intermediate is a list of composite rows, and each
join probes the incoming relation through a hash index on the
cheapest-predicate attribute (mirroring the model's
``min_{k in X} w[k][j]`` access-path choice), then filters on the
remaining predicates into the prefix.

Counters per join:

* ``output_rows`` — true cardinality, to compare against ``N_i``;
* ``probe_rows`` — rows fetched from the inner via the index before
  residual filtering: with ``w`` at the model's lower bound
  ``t_j * s``, the model's ``H_i = N(X) * w`` predicts exactly this;
* ``residual_checks`` — extra predicate evaluations (model-invisible
  CPU work; reported for completeness).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.data import SyntheticDatabase, _edge_key
from repro.utils.validation import require


@dataclass(frozen=True)
class JoinTrace:
    """Measured work of one join operator."""

    incoming_relation: int
    probe_edge: Optional[Tuple[int, int]]  # None = cartesian product
    output_rows: int
    probe_rows: int
    residual_checks: int


@dataclass(frozen=True)
class ExecutionTrace:
    """Full execution record of a join sequence."""

    sequence: Tuple[int, ...]
    joins: Tuple[JoinTrace, ...]
    result_rows: int

    @property
    def total_probe_rows(self) -> int:
        return sum(join.probe_rows for join in self.joins)


def execute_sequence(
    database: SyntheticDatabase,
    sequence: Sequence[int],
    max_intermediate_rows: int = 5_000_000,
) -> ExecutionTrace:
    """Run the plan; returns per-join measured work.

    The prefix is represented as a list of per-relation row indices;
    predicates are evaluated against the materialized attributes.

    ``max_intermediate_rows`` guards against materializing a plan whose
    *estimated* intermediates exceed memory (checked up front from the
    cost model, before any work); raise it explicitly for big runs.
    """
    instance = database.instance
    n = instance.num_relations
    require(
        len(sequence) == n and sorted(sequence) == list(range(n)),
        f"join sequence must be a permutation of range({n})",
    )
    from repro.joinopt.cost import intermediate_sizes

    predicted = intermediate_sizes(instance, sequence)
    worst = max(max(predicted), instance.size(sequence[0]))
    require(
        worst <= max_intermediate_rows,
        f"plan's estimated peak intermediate has ~{float(worst):.3g} rows, "
        f"above the {max_intermediate_rows} guard; pass "
        "max_intermediate_rows explicitly or pick a cheaper plan",
    )

    # Prefix rows: tuples of (relation -> row index), stored as dicts.
    prefix: List[Dict[int, int]] = [
        {sequence[0]: row} for row in range(database.size(sequence[0]))
    ]
    traces: List[JoinTrace] = []

    for position in range(1, n):
        incoming = sequence[position]
        earlier = sequence[:position]
        # Access-path choice: the model's argmin of w[k][incoming].
        adjacent = [
            k for k in earlier if instance.graph.has_edge(k, incoming)
        ]
        if adjacent:
            probe_partner = min(
                adjacent,
                key=lambda k: (instance.access_cost(k, incoming), k),
            )
            probe_key = _edge_key(probe_partner, incoming)
            # Hash index on the incoming relation's probe attribute.
            index: Dict[int, List[int]] = defaultdict(list)
            for row, attributes in enumerate(database.tuples[incoming]):
                index[attributes[probe_key]].append(row)
            residual_edges = [
                (k, _edge_key(k, incoming))
                for k in adjacent
                if k != probe_partner
            ]
            new_prefix: List[Dict[int, int]] = []
            probe_rows = 0
            residual_checks = 0
            for combo in prefix:
                partner_row = combo[probe_partner]
                partner_value = database.tuples[probe_partner][partner_row][
                    probe_key
                ]
                for candidate in index.get(partner_value, ()):
                    probe_rows += 1
                    matches = True
                    for k, key in residual_edges:
                        residual_checks += 1
                        left = database.tuples[k][combo[k]][key]
                        right = database.tuples[incoming][candidate][key]
                        if left != right:
                            matches = False
                            break
                    if matches:
                        extended = dict(combo)
                        extended[incoming] = candidate
                        new_prefix.append(extended)
            traces.append(
                JoinTrace(
                    incoming_relation=incoming,
                    probe_edge=probe_key,
                    output_rows=len(new_prefix),
                    probe_rows=probe_rows,
                    residual_checks=residual_checks,
                )
            )
            prefix = new_prefix
        else:
            # Cartesian product: scan the whole inner per prefix row.
            inner_size = database.size(incoming)
            new_prefix = [
                {**combo, incoming: row}
                for combo in prefix
                for row in range(inner_size)
            ]
            traces.append(
                JoinTrace(
                    incoming_relation=incoming,
                    probe_edge=None,
                    output_rows=len(new_prefix),
                    probe_rows=len(prefix) * inner_size,
                    residual_checks=0,
                )
            )
            prefix = new_prefix

    return ExecutionTrace(
        sequence=tuple(sequence),
        joins=tuple(traces),
        result_rows=len(prefix),
    )
