"""Page-level hybrid hash-join simulation.

The QO_H cost function ``h(m, b_R, b_S)`` is an *abstraction* of
hybrid hash-join I/O.  This simulator derives the I/O count from the
mechanics instead:

* ``m >= b_S`` — the inner builds fully in memory: read ``b_S`` pages,
  stream the outer through (the pipeline already pays for the stream).
* ``m < b_S`` — hybrid hash: the inner is split into an in-memory
  partition of ``m`` pages and spilled partitions totalling
  ``b_S - m`` pages.  Spilled inner pages are written and re-read;
  the matching fraction of the outer stream (``(b_S - m)/b_S`` of its
  pages, under uniform hashing) is also written and re-read.

Counting reads and writes gives

    io(m) = b_S + 2 * (b_S - m) + 2 * b_R * (b_S - m) / b_S

which is linear and decreasing in ``m`` with ``io(b_S) = b_S`` — the
same shape as the paper's ``h`` with ``g(m, b) ~ (b - m)/b`` and a
slope constant of 2.  ``test_bench_hashsim.py`` measures the agreement
(correlation, endpoints, monotonicity) between the mechanical count
and the abstract model across memory sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence

from repro.hashjoin.cost_model import HashJoinCostModel
from repro.hashjoin.instance import QOHInstance
from repro.hashjoin.pipeline import Pipeline, PipelineDecomposition
from repro.utils.validation import require


@dataclass(frozen=True)
class SimulatedJoin:
    """Mechanical I/O breakdown of one hybrid hash join."""

    inner_pages: int
    memory: Fraction
    build_reads: Fraction
    spill_writes: Fraction
    spill_reads: Fraction

    @property
    def total_io(self) -> Fraction:
        return self.build_reads + self.spill_writes + self.spill_reads


def simulate_hash_join(
    memory: Fraction | int, outer_pages: Fraction | int, inner_pages: int
) -> SimulatedJoin:
    """Mechanical I/O count for one hybrid hash join."""
    require(inner_pages >= 1, "inner relation must have pages")
    memory = Fraction(memory)
    outer = Fraction(outer_pages)
    require(memory >= 1, "need at least one page of memory")
    build_reads = Fraction(inner_pages)
    if memory >= inner_pages:
        return SimulatedJoin(
            inner_pages=inner_pages,
            memory=memory,
            build_reads=build_reads,
            spill_writes=Fraction(0),
            spill_reads=Fraction(0),
        )
    spilled_inner = Fraction(inner_pages) - memory
    spilled_fraction = spilled_inner / inner_pages
    spilled_outer = outer * spilled_fraction
    # Spilled pages are written once and re-read once, on both sides.
    spill_writes = spilled_inner + spilled_outer
    spill_reads = spilled_inner + spilled_outer
    return SimulatedJoin(
        inner_pages=inner_pages,
        memory=memory,
        build_reads=build_reads,
        spill_writes=spill_writes,
        spill_reads=spill_reads,
    )


@dataclass(frozen=True)
class SimulatedPipeline:
    """I/O breakdown of one pipeline execution."""

    input_reads: Fraction
    join_io: Fraction
    output_writes: Fraction

    @property
    def total_io(self) -> Fraction:
        return self.input_reads + self.join_io + self.output_writes


def simulate_decomposition(
    instance: QOHInstance,
    sequence: Sequence[int],
    decomposition: PipelineDecomposition,
) -> List[SimulatedPipeline]:
    """Mechanically simulate a full plan, pipeline by pipeline.

    Uses the same optimal memory split the cost model would choose, so
    the comparison isolates the join-cost abstraction itself.
    """
    from repro.hashjoin.allocation import allocate_memory

    intermediates = instance.intermediate_sizes(sequence)
    results: List[SimulatedPipeline] = []
    for pipeline in decomposition.pipelines:
        i, k = pipeline.first_join, pipeline.last_join
        outer_sizes = [intermediates[j - 1] for j in range(i, k + 1)]
        inner_sizes = [instance.size(sequence[j]) for j in range(i, k + 1)]
        allocation = allocate_memory(
            instance.model, outer_sizes, inner_sizes, instance.memory
        )
        require(allocation is not None, "pipeline infeasible under M")
        join_io = Fraction(0)
        for offset in range(pipeline.num_joins):
            simulated = simulate_hash_join(
                allocation.allocation[offset],
                outer_sizes[offset],
                inner_sizes[offset],
            )
            join_io += simulated.total_io
        results.append(
            SimulatedPipeline(
                input_reads=Fraction(intermediates[i - 1]),
                join_io=join_io,
                output_writes=Fraction(intermediates[k]),
            )
        )
    return results


def model_join_cost(
    model: HashJoinCostModel,
    memory: Fraction | int,
    outer_pages: Fraction | int,
    inner_pages: int,
) -> Fraction:
    """The abstract ``h`` for side-by-side comparison."""
    return model.h(Fraction(memory), Fraction(outer_pages), inner_pages)
