"""Synthetic relations whose join sizes match the estimates exactly.

For an edge ``{i, j}`` with selectivity ``1/d`` both relations carry a
join attribute over the domain ``0 .. d-1``.  Within one relation the
attributes of its incident edges are assigned *mixed-radix*: listing
the incident edges ``e_1, e_2, ...`` with domains ``d_1, d_2, ...``,
row ``r`` gets value ``(r // (d_1 ... d_{k-1})) mod d_k`` on edge
``e_k``.  When ``d_1 * d_2 * ...`` divides the relation's size every
combination of attribute values appears equally often, and attribute
values are independent across relations by construction; a counting
argument then gives, for every subset ``X`` of relations,

    |join of X|  =  prod_{r in X} t_r  *  prod_{edges inside X} 1/d_e

— the paper's product estimate ``N(X)``, *exactly*, cycles included.

The generator records whether the divisibility precondition held for
every relation (``exact=True``); otherwise the estimates are only
approximate and the executor's counters will show the discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

from repro.joinopt.instance import QONInstance
from repro.utils.validation import require

EdgeKey = Tuple[int, int]


@dataclass(frozen=True)
class SyntheticDatabase:
    """Materialized relations for a QO_N instance.

    ``tuples[r]`` holds relation r's rows; each row maps an edge key to
    that row's join-attribute value for that predicate.  ``exact``
    records whether the divisibility preconditions held, i.e. whether
    estimated and true cardinalities are guaranteed equal.
    """

    instance: QONInstance
    tuples: Tuple[Tuple[Dict[EdgeKey, int], ...], ...]
    domains: Dict[EdgeKey, int]
    exact: bool

    def size(self, relation: int) -> int:
        return len(self.tuples[relation])

    def total_rows(self) -> int:
        return sum(len(rows) for rows in self.tuples)


def _edge_key(i: int, j: int) -> EdgeKey:
    return (i, j) if i < j else (j, i)


def generate_database(
    instance: QONInstance, max_total_rows: int = 2_000_000
) -> SyntheticDatabase:
    """Materialize the instance's relations.

    Requires integer sizes and selectivities of the form ``1/d``
    (which every workload generator and reduction in this library
    produces).  ``max_total_rows`` guards against accidentally
    materializing a harmonized instance whose domain products blew the
    sizes up; raise it explicitly for big runs.
    """
    n = instance.num_relations
    total = sum(instance.size(r) for r in range(n))
    require(
        total <= max_total_rows,
        f"instance has {total} rows, above the {max_total_rows} guard; "
        "pass max_total_rows explicitly or shrink the instance "
        "(e.g. generate with smaller size/domain ranges)",
    )
    domains: Dict[EdgeKey, int] = {}
    for i, j in instance.graph.edges:
        selectivity = Fraction(instance.selectivity(i, j))
        require(
            selectivity.numerator == 1,
            f"edge ({i},{j}): selectivity must be 1/d for data generation",
        )
        domains[_edge_key(i, j)] = selectivity.denominator

    exact = True
    relations: List[Tuple[Dict[EdgeKey, int], ...]] = []
    for relation in range(n):
        size = instance.size(relation)
        require(
            isinstance(size, int) and size > 0,
            "relation sizes must be positive ints for data generation",
        )
        incident = sorted(
            _edge_key(relation, neighbor)
            for neighbor in instance.graph.neighbors(relation)
        )
        # Mixed-radix strides: every combination of incident-attribute
        # values appears equally often iff the domain product | size.
        strides: Dict[EdgeKey, int] = {}
        radix = 1
        for key in incident:
            strides[key] = radix
            radix *= domains[key]
        if size % radix != 0:
            exact = False
        rows = tuple(
            {
                key: (row // strides[key]) % domains[key]
                for key in incident
            }
            for row in range(size)
        )
        relations.append(rows)
    return SyntheticDatabase(
        instance=instance,
        tuples=tuple(relations),
        domains=domains,
        exact=exact,
    )


def harmonize_sizes(instance: QONInstance) -> QONInstance:
    """Round every relation size up to the nearest multiple of its
    incident-domain product, so :func:`generate_database` is exact.

    Returns a new instance with adjusted sizes (selectivities and the
    query graph unchanged; access costs revert to the model's lower
    bounds, consistent with the new sizes).
    """
    n = instance.num_relations
    new_sizes: List[int] = []
    for relation in range(n):
        size = instance.size(relation)
        radix = 1
        for neighbor in instance.graph.neighbors(relation):
            radix *= Fraction(instance.selectivity(relation, neighbor)).denominator
        adjusted = ((size + radix - 1) // radix) * radix
        new_sizes.append(adjusted)
    selectivities = {
        _edge_key(i, j): instance.selectivity(i, j)
        for i, j in instance.graph.edges
    }
    return QONInstance(instance.graph, new_sizes, selectivities)
