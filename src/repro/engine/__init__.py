"""A miniature execution engine validating the QO_N cost model.

The paper's cost formulas are *estimates* (products of sizes and
selectivities).  This package closes the loop: it materializes
synthetic relations whose join cardinalities match the estimates
*exactly* (round-robin attribute assignment), executes left-deep
nested-loops plans for real (hash indexes on join attributes), and
counts the work — produced tuples per join and probe rows scanned —
so the model's ``N_i`` and ``H_i`` can be checked against ground truth
rather than against themselves.

* :mod:`repro.engine.data` — synthetic relation generation;
* :mod:`repro.engine.executor` — the nested-loops executor with work
  counters.
"""

from repro.engine.data import SyntheticDatabase, generate_database
from repro.engine.executor import ExecutionTrace, execute_sequence
from repro.engine.hashsim import simulate_decomposition, simulate_hash_join

__all__ = [
    "SyntheticDatabase",
    "generate_database",
    "ExecutionTrace",
    "execute_sequence",
    "simulate_decomposition",
    "simulate_hash_join",
]
