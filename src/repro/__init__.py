"""repro: reproduction of "On the Complexity of Approximate Query
Optimization" (PODS 2002).

Subpackages:

* :mod:`repro.sat` — 3SAT substrate (formulas, solvers, gap families);
* :mod:`repro.graphs` — graphs, clique and vertex-cover machinery;
* :mod:`repro.joinopt` — the QO_N nested-loops join-ordering problem;
* :mod:`repro.hashjoin` — the QO_H pipelined hash-join problem;
* :mod:`repro.starqo` — the SQO-CP star-query problem and SPPCS;
* :mod:`repro.core` — the paper's reductions, gap quantities and
  end-to-end hardness chains;
* :mod:`repro.workloads` — parametric instance families for benchmarks;
* :mod:`repro.utils` — numerics (log-domain arithmetic), RNG, checks.
"""

__version__ = "1.0.0"
