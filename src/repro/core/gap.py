"""Gap quantities of Theorems 9 and 15.

For QO_N (with ``beta = c - d/2`` and ``B = beta * n``):

* ``K_{c,d}(alpha, n) = w * alpha ** (B (B + 1) / 2 + 1)`` — the
  YES-side cost bound (Lemma 6);
* NO-side lower bound ``K * alpha ** (d n / 2 - 1)`` (Lemma 8);
* ``log K = Theta(n^2 log alpha)``; choosing
  ``alpha = 4 ** (n ** (1/delta))`` makes the gap
  ``2^{Theta(log^{1 - delta'} K)}`` — bigger than every polylog.

For QO_H:

* ``L(alpha, n) = t0 * alpha ** (n^2 / 9)`` (Lemma 11/12);
* ``G(alpha, n) = t0 * alpha ** (n^2/9 + n eps/3 - 1)`` (Lemma 13/14).

Exact big-int versions are provided where exponents are integral;
``*_log2`` variants (Fraction exponent arithmetic) cover sweeps where
the exact integers would be gigabytes.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Union

from repro.utils.validation import require

Real = Union[int, Fraction, float]


def default_alpha_exponent(n: int, delta: float = 1.0) -> int:
    """The even base-2 exponent ``e`` with ``alpha = 2**e``.

    The paper sets ``alpha = 4 ** (n ** (1/delta))``; we return
    ``2 * ceil(n ** (1/delta))`` so ``alpha`` is a perfect square (the
    reductions need integer ``sqrt(alpha)``).
    """
    require(n >= 1, "n must be positive")
    require(delta > 0, "delta must be positive")
    return 2 * math.ceil(n ** (1.0 / delta))


def k_cd(alpha: int, w: int, k_yes: int, k_no: int) -> int:
    """Exact ``K_{c,d}(alpha, n)`` for integral parameters.

    ``B = beta n = (c - d/2) n = (k_yes + k_no) / 2`` must be integral
    (the f_N constructor enforces the parity).
    """
    require((k_yes + k_no) % 2 == 0, "k_yes + k_no must be even")
    b = (k_yes + k_no) // 2
    exponent = b * (b + 1) // 2 + 1
    return w * alpha**exponent


def k_cd_log2(alpha_log2: Real, w_log2: Real, k_yes: int, k_no: int) -> Fraction:
    """``log2 K_{c,d}`` with exact Fraction exponent arithmetic."""
    b = Fraction(k_yes + k_no, 2)
    exponent = b * (b + 1) / 2 + 1
    return Fraction(w_log2) + Fraction(alpha_log2) * exponent


def gap_factor_log2(alpha_log2: Real, k_yes: int, k_no: int) -> Fraction:
    """``log2`` of the NO/YES gap factor ``alpha ** (dn/2 - 1)``."""
    half_gap = Fraction(k_yes - k_no, 2)
    return Fraction(alpha_log2) * (half_gap - 1)


def no_side_lower_bound(alpha: int, w: int, k_yes: int, k_no: int) -> int:
    """Exact Lemma 8 lower bound ``K * alpha ** (dn/2 - 1)``."""
    require((k_yes - k_no) % 2 == 0, "k_yes - k_no must be even")
    half_gap = (k_yes - k_no) // 2
    require(half_gap >= 1, "gap must leave a positive exponent")
    return k_cd(alpha, w, k_yes, k_no) * alpha ** (half_gap - 1)


def l_bound_log2(alpha_log2: Real, t0_log2: Real, n: int) -> Fraction:
    """``log2 L(alpha, n) = log2 t0 + (n^2 / 9) log2 alpha``."""
    return Fraction(t0_log2) + Fraction(alpha_log2) * Fraction(n * n, 9)


def g_bound_log2(
    alpha_log2: Real, t0_log2: Real, n: int, epsilon: Fraction
) -> Fraction:
    """``log2 G(alpha, n) = log2 t0 + (n^2/9 + n eps/3 - 1) log2 alpha``."""
    exponent = Fraction(n * n, 9) + Fraction(n) * Fraction(epsilon) / 3 - 1
    return Fraction(t0_log2) + Fraction(alpha_log2) * exponent


def polylog_budget_log2(cost_log2: Real, delta: float) -> float:
    """``log2`` of the ratio budget ``2 ** (log^{1-delta} K)``.

    The theorems say no polynomial algorithm can guarantee a ratio
    below this budget (for any fixed ``delta > 0``) unless P = NP.
    ``log`` here is ``log2`` of the optimal cost ``K``.
    """
    require(0 < delta < 1, "delta must lie in (0, 1)")
    value = float(cost_log2)
    require(value > 0, "cost must exceed 1 for the budget to make sense")
    return value ** (1.0 - delta)


def exceeds_every_polylog(
    gap_log2: Real, cost_log2: Real, max_exponent: int = 8
) -> bool:
    """Heuristic check: is the gap factor larger than ``log^k K`` for
    all ``k`` up to ``max_exponent``?  Used by the gap benchmarks to
    assert the qualitative message on concrete instances."""
    gap = float(gap_log2)
    log_k = float(cost_log2)  # = log2 K
    if log_k <= 1:
        return False
    # log2 of log2^k K:
    return all(
        gap > max(1, max_exponent) and gap > k * math.log2(log_k)
        for k in range(1, max_exponent + 1)
    )
