"""End-to-end hardness chains (Theorems 9 and 15).

These compose the SAT-side reductions with f_N / f_H and retain every
intermediate artifact, so an experiment can inspect the whole pipeline:

    gap 3SAT(13)  --Lemma 3-->  CLIQUE       --f_N-->  QO_N instance
    gap 3SAT(13)  --Lemma 4-->  2/3-CLIQUE   --f_H-->  QO_H instance

For YES-promise formulas the chain also carries the *certificate*: the
planted satisfying assignment becomes a clique (Lemma 3/4 witness
mapping), which becomes a cheap join sequence (Lemma 6/12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Tuple

from repro.core.certificates import (
    qoh_certificate_plan,
    qon_certificate_sequence,
)
from repro.core.reductions.clique_to_qoh import FHReduction, clique_to_qoh
from repro.core.reductions.clique_to_qon import FNReduction, clique_to_qon
from repro.core.reductions.sat_to_clique import CliqueReduction, sat_to_clique
from repro.core.reductions.sat_to_two_thirds_clique import (
    TwoThirdsCliqueReduction,
    sat_to_two_thirds_clique,
)
from repro.core.results import PlanResult
from repro.hashjoin.instance import QOHInstance
from repro.joinopt.instance import QONInstance
from repro.sat.gapfamilies import GapFormula
from repro.utils.validation import require


@dataclass(frozen=True)
class QONHardnessInstance:
    """Everything produced by the 3SAT -> QO_N chain."""

    source: GapFormula
    clique_step: CliqueReduction
    fn_step: FNReduction
    certificate_sequence: Optional[Tuple[int, ...]]

    @property
    def instance(self) -> QONInstance:
        return self.fn_step.instance

    def yes_cost_bound(self) -> int:
        return self.fn_step.yes_cost_bound()

    def no_cost_lower_bound(self) -> int:
        return self.fn_step.no_cost_lower_bound()


@dataclass(frozen=True)
class QOHHardnessInstance:
    """Everything produced by the 3SAT -> QO_H chain."""

    source: GapFormula
    clique_step: TwoThirdsCliqueReduction
    fh_step: FHReduction
    certificate_plan: Optional[PlanResult]

    @property
    def instance(self) -> QOHInstance:
        return self.fh_step.instance


def hardness_chain_qon(
    source: GapFormula,
    alpha: Optional[int] = None,
    delta: float = 1.0,
    family_theta: Optional[Fraction] = None,
) -> QONHardnessInstance:
    """Compose Lemma 3 with f_N (Theorem 9's reduction).

    The reduction is fixed per *family*: ``d`` is derived from the
    family's gap ``theta`` (``dn = ceil(theta m)``), for YES and NO
    sources alike.  ``family_theta`` defaults to the source's own theta
    for NO instances and to 1/8 (the canonical core gap) for YES ones.
    """
    clique_step = sat_to_clique(source)
    k_yes = clique_step.clique_if_satisfiable
    if family_theta is None:
        family_theta = (
            source.theta if not source.satisfiable else Fraction(1, 8)
        )
    deficit = math.ceil(family_theta * source.formula.num_clauses)
    if deficit % 2:
        # k_yes + k_no must be even for f_N; shrinking the deficit by
        # one *weakens* the NO bound, which stays sound.
        deficit -= 1
    require(
        deficit >= 2,
        "formula too small for an even clique gap; use a family with "
        "theta * num_clauses >= 2 (e.g. more unsatisfiable cores)",
    )
    k_no = k_yes - deficit
    if not source.satisfiable:
        assert clique_step.clique_bound_if_gap is not None
        require(
            k_no >= clique_step.clique_bound_if_gap,
            "family theta exceeds the instance's certified gap",
        )
    fn_step = clique_to_qon(
        clique_step.graph, k_yes=k_yes, k_no=k_no, alpha=alpha, delta=delta
    )
    certificate: Optional[Tuple[int, ...]] = None
    if source.satisfiable:
        assert source.witness is not None
        clique = clique_step.clique_from_assignment(source.witness)
        certificate = qon_certificate_sequence(fn_step, clique)
    return QONHardnessInstance(
        source=source,
        clique_step=clique_step,
        fn_step=fn_step,
        certificate_sequence=certificate,
    )


def hardness_chain_qoh(
    source: GapFormula,
    alpha: Optional[int] = None,
    delta: float = 1.0,
) -> QOHHardnessInstance:
    """Compose Lemma 4 with f_H (Theorem 15's reduction)."""
    clique_step = sat_to_two_thirds_clique(source)
    n = clique_step.graph.num_vertices
    require(n % 3 == 0, "Lemma 4 output must have n divisible by 3")
    fh_step = clique_to_qoh(
        clique_step.graph,
        epsilon=clique_step.epsilon,
        alpha=alpha,
        delta=delta,
    )
    certificate: Optional[PlanResult] = None
    if source.satisfiable:
        assert source.witness is not None
        clique = clique_step.clique_from_assignment(source.witness)
        certificate = qoh_certificate_plan(fh_step, clique)
    return QOHHardnessInstance(
        source=source,
        clique_step=clique_step,
        fh_step=fh_step,
        certificate_plan=certificate,
    )
