"""Hardness reports: one object summarizing a gap experiment.

``build_qon_report`` gathers, for a matched YES/NO f_N pair, everything
Theorem 9 talks about — the certificate cost, the K_{c,d} budget, the
Lemma 8 floor, what each polynomial heuristic actually finds, and the
polylog budgets the gap defeats — into a structured record with a
``render()`` method.  Used by the CLI and handy in notebooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.certificates import qon_certificate_sequence
from repro.core.gap import gap_factor_log2, k_cd_log2, polylog_budget_log2
from repro.joinopt.cost import total_cost
from repro.joinopt.optimizers import (
    greedy_min_cost,
    greedy_min_size,
    random_sampling,
    simulated_annealing,
)
from repro.utils.lognum import log2_of

if TYPE_CHECKING:  # avoid a circular import: workloads builds on core
    from repro.workloads.gaps import GapPair


@dataclass(frozen=True)
class QONHardnessReport:
    """Measured Theorem 9 quantities for one gap pair."""

    n: int
    k_yes: int
    k_no: int
    alpha_log2: int
    certificate_log2: float
    k_bound_log2: float
    floor_log2: float
    heuristic_log2: Dict[str, float]
    polylog_budgets: Dict[float, float] = field(default_factory=dict)

    @property
    def observed_gap_log2(self) -> float:
        """Best heuristic cost on the NO side over the YES certificate."""
        return min(self.heuristic_log2.values()) - self.certificate_log2

    @property
    def provable_gap_log2(self) -> float:
        return self.floor_log2 - self.certificate_log2

    def beats_budget(self, delta: float) -> bool:
        return self.provable_gap_log2 > self.polylog_budgets[delta]

    def render(self) -> str:
        lines = [
            f"QO_N hardness report: n={self.n}, k_yes={self.k_yes}, "
            f"k_no={self.k_no}, alpha=2^{self.alpha_log2}",
            f"  YES certificate cost:   2^{self.certificate_log2:.1f}",
            f"  K_{{c,d}} budget:         2^{self.k_bound_log2:.1f}",
            f"  NO-side floor (Lemma 8): 2^{self.floor_log2:.1f}",
        ]
        for name, value in sorted(self.heuristic_log2.items()):
            lines.append(f"  {name} finds (NO side):".ljust(27) + f" 2^{value:.1f}")
        lines.append(
            f"  observed gap: 2^{self.observed_gap_log2:.1f}, "
            f"provable gap: 2^{self.provable_gap_log2:.1f}"
        )
        for delta, budget in sorted(self.polylog_budgets.items()):
            verdict = "beaten" if self.provable_gap_log2 > budget else "not beaten"
            lines.append(
                f"  2^{{log^{{{1 - delta:.2f}}} K}} budget = 2^{budget:.1f}: {verdict}"
            )
        return "\n".join(lines)


def build_qon_report(
    pair: "GapPair",
    deltas: Tuple[float, ...] = (0.5, 0.25),
    heuristic_seed: int = 0,
) -> QONHardnessReport:
    """Measure a matched f_N pair end to end (log-domain evaluation)."""
    fn_yes = pair.yes_reduction
    fn_no = pair.no_reduction
    certificate = qon_certificate_sequence(fn_yes, pair.yes_clique)
    cert_log2 = float(
        log2_of(total_cost(fn_yes.instance.to_log_domain(), certificate))
    )
    k_log2 = float(
        k_cd_log2(
            fn_yes.alpha_log2,
            log2_of(fn_yes.edge_access_cost),
            fn_yes.k_yes,
            fn_yes.k_no,
        )
    )
    floor_log2 = k_log2 + float(
        gap_factor_log2(fn_no.alpha_log2, fn_no.k_yes, fn_no.k_no)
    )
    no_instance = fn_no.instance.to_log_domain()
    heuristics = {
        "greedy-min-cost": greedy_min_cost(no_instance),
        "greedy-min-size": greedy_min_size(no_instance),
        "simulated-annealing": simulated_annealing(no_instance, rng=heuristic_seed),
        "random-sampling": random_sampling(no_instance, rng=heuristic_seed),
    }
    budgets = {
        delta: polylog_budget_log2(k_log2, delta=delta) for delta in deltas
    }
    return QONHardnessReport(
        n=fn_yes.n,
        k_yes=fn_yes.k_yes,
        k_no=fn_yes.k_no,
        alpha_log2=fn_yes.alpha_log2,
        certificate_log2=cert_log2,
        k_bound_log2=k_log2,
        floor_log2=floor_log2,
        heuristic_log2={
            name: float(log2_of(result.cost))
            for name, result in heuristics.items()
        },
        polylog_budgets=budgets,
    )


@dataclass(frozen=True)
class QOHHardnessReport:
    """Measured Theorem 15 quantities for one f_H gap pair."""

    n: int
    alpha_log2: int
    certificate_log2: float
    l_bound_log2: float
    g_bound_log2: Optional[float]
    no_best_found_log2: float

    @property
    def observed_gap_log2(self) -> float:
        return self.no_best_found_log2 - self.certificate_log2

    def render(self) -> str:
        lines = [
            f"QO_H hardness report: n={self.n}, alpha=2^{self.alpha_log2}",
            f"  YES certificate (5 pipelines): 2^{self.certificate_log2:.1f}",
            f"  L(alpha, n) scale:             2^{self.l_bound_log2:.1f}",
        ]
        if self.g_bound_log2 is not None:
            lines.append(
                f"  G(alpha, n) NO floor:          2^{self.g_bound_log2:.1f}"
            )
        lines.append(
            f"  best NO plan found:            2^{self.no_best_found_log2:.1f}"
        )
        lines.append(f"  observed gap: 2^{self.observed_gap_log2:.1f}")
        return "\n".join(lines)


def build_qoh_report(pair: "GapPair", search_seed: int = 0) -> QOHHardnessReport:
    """Measure a matched f_H pair: certificate vs the best NO plan that
    greedy, beam search and sampling can find."""
    from repro.core.certificates import qoh_certificate_plan
    from repro.hashjoin.optimizer import best_decomposition, qoh_greedy
    from repro.hashjoin.search import qoh_beam_search
    from repro.utils.rng import make_rng

    fh_yes = pair.yes_reduction
    fh_no = pair.no_reduction
    certificate = qoh_certificate_plan(fh_yes, pair.yes_clique)
    instance = fh_no.instance
    candidates = [
        qoh_greedy(instance),
        qoh_beam_search(instance, beam_width=8, rng=search_seed),
    ]
    rng = make_rng(search_seed)
    n = fh_no.n
    for _ in range(10):
        order = [0] + [1 + v for v in rng.sample(range(n), n)]
        candidates.append(best_decomposition(instance, order))
    best = min(
        plan.cost for plan in candidates if plan is not None
    )
    g_log2 = fh_no.g_bound_log2()
    return QOHHardnessReport(
        n=fh_yes.n,
        alpha_log2=fh_yes.alpha_log2,
        certificate_log2=float(log2_of(certificate.cost)),
        l_bound_log2=float(fh_yes.l_bound_log2()),
        g_bound_log2=float(g_log2) if g_log2 is not None else None,
        no_best_found_log2=float(log2_of(best)),
    )
