"""Lemma 3: 3SAT(13) -> CLIQUE with a multiplicative gap.

Construction (following the paper's proof sketch):

1. run the Garey-Johnson reduction to VERTEX COVER, giving a graph
   ``G_vc`` on ``n_vc = 2v + 3m`` vertices with
   ``tau = v + 3m - maxsat``;
2. complement it: cliques of ``G_vc^c`` are independent sets of
   ``G_vc``, so ``omega(G_vc^c) = n_vc - tau = v + maxsat`` — i.e.
   ``v + m`` when satisfiable, at most ``v + m - theta m`` when at
   most ``(1 - theta) m`` clauses are satisfiable;
3. pad with a complete graph over ``4v + 3m`` fresh vertices, each
   adjacent to everything — this adds ``4v + 3m`` to every maximal
   clique and brings the minimum degree up to the CLIQUE variant's
   near-complete requirement.

Resulting parameters on ``n = 6v + 6m`` vertices:

* YES: ``omega >= cn`` with ``cn = 5v + 4m``;
* NO:  ``omega <= (c - d)n`` with ``dn = ceil(theta m)``.

Degree note: a literal vertex of ``G_vc`` has degree at most
``1 + occurrences(literal) <= 14`` under 3SAT(13), so its complement
degree is at least ``n - 15`` after padding.  The paper's CLIQUE
variant states ``>= |V| - 14``; the one-off deficit is immaterial to
every downstream bound (which only need the deficit to be O(1)) and is
recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import ceil
from typing import List, Optional, Tuple

from repro.core.reductions.sat_to_vc import VCReduction, sat_to_vertex_cover
from repro.graphs.graph import Graph
from repro.sat.cnf import Assignment, CNFFormula
from repro.sat.gapfamilies import GapFormula
from repro.utils.validation import require
from repro.observability.tracer import traced


@dataclass(frozen=True)
class CliqueReduction:
    """Output of the Lemma 3 reduction.

    Attributes:
        graph: the CLIQUE instance (dense, near-complete degrees).
        clique_if_satisfiable: the YES-side clique size ``cn``.
        clique_bound_if_gap: NO-side upper bound ``(c-d)n``
            (meaningful only when the source is a NO gap formula).
        vc_step: the intermediate VERTEX COVER reduction.
        padding: number of universal vertices appended.
    """

    graph: Graph
    clique_if_satisfiable: int
    clique_bound_if_gap: Optional[int]
    vc_step: VCReduction
    padding: int

    @property
    def c(self) -> Fraction:
        """The clique fraction ``c`` of this instance family."""
        return Fraction(self.clique_if_satisfiable, self.graph.num_vertices)

    @property
    def d(self) -> Optional[Fraction]:
        """The gap fraction ``d`` (None for YES-promise sources)."""
        if self.clique_bound_if_gap is None:
            return None
        return Fraction(
            self.clique_if_satisfiable - self.clique_bound_if_gap,
            self.graph.num_vertices,
        )

    def clique_from_assignment(self, assignment: Assignment) -> List[int]:
        """A clique realizing the YES bound from a satisfying assignment.

        The independent set of the VC graph — hence a clique of its
        complement — is the *false* literal vertex of each variable
        plus one *true* triangle corner per clause, plus all padding
        vertices (which are universal).
        """
        vc = self.vc_step
        members: List[int] = []
        for var in range(1, vc.num_variables + 1):
            false_literal = -var if assignment.get(var, False) else var
            members.append(vc.literal_vertex[false_literal])
        for clause, corners in zip(vc.formula, vc.triangle_vertices):
            for position, literal in enumerate(clause):
                if assignment.get(abs(literal), False) == (literal > 0):
                    members.append(corners[position])
                    break
        base_n = vc.graph.num_vertices
        members.extend(range(base_n, base_n + self.padding))
        return sorted(members)


@traced("reduce.sat_to_clique")
def sat_to_clique(source: GapFormula | CNFFormula) -> CliqueReduction:
    """Apply the Lemma 3 reduction to a (gap) 3SAT formula."""
    if isinstance(source, GapFormula):
        formula = source.formula
        theta = source.theta
        satisfiable = source.satisfiable
    else:
        formula = source
        theta = None
        satisfiable = None

    vc = sat_to_vertex_cover(formula)
    v = formula.num_vars
    m = formula.num_clauses
    complement = vc.graph.complement()
    padding = 4 * v + 3 * m
    graph = complement.add_universal_vertices(padding)

    clique_yes = v + m + padding  # = 5v + 4m for exactly-3 clauses
    clique_no: Optional[int] = None
    if theta is not None and not satisfiable:
        # maxsat <= (1 - theta) m  =>  omega <= v + m - theta*m + padding.
        deficit = ceil(theta * m)
        clique_no = clique_yes - deficit
        require(clique_no >= 1, "gap exceeds the clique size")
    return CliqueReduction(
        graph=graph,
        clique_if_satisfiable=clique_yes,
        clique_bound_if_gap=clique_no,
        vc_step=vc,
        padding=padding,
    )
