"""Reduction steps, one module each.

The SAT-side chain (Sections 3-5):

* :mod:`repro.core.reductions.sat_to_vc` — Garey-Johnson 3SAT -> VC;
* :mod:`repro.core.reductions.sat_to_clique` — Lemma 3;
* :mod:`repro.core.reductions.sat_to_two_thirds_clique` — Lemma 4;
* :mod:`repro.core.reductions.clique_to_qon` — f_N (Section 4);
* :mod:`repro.core.reductions.clique_to_qoh` — f_H (Section 5);
* :mod:`repro.core.reductions.sparse` — f_{N,e}, f_{H,e} (Section 6).

The appendix chain:

* :mod:`repro.core.reductions.partition_to_sppcs` — Appendix A.5;
* :mod:`repro.core.reductions.sppcs_to_sqocp` — Appendix B.
"""

from repro.core.reductions.sat_to_vc import VCReduction, sat_to_vertex_cover
from repro.core.reductions.sat_to_clique import CliqueReduction, sat_to_clique
from repro.core.reductions.sat_to_two_thirds_clique import (
    TwoThirdsCliqueReduction,
    sat_to_two_thirds_clique,
)
from repro.core.reductions.clique_to_qon import FNReduction, clique_to_qon
from repro.core.reductions.clique_to_qoh import FHReduction, clique_to_qoh
from repro.core.reductions.sparse import (
    SparseFNReduction,
    SparseFHReduction,
    sparse_clique_to_qon,
    sparse_clique_to_qoh,
)
from repro.core.reductions.partition_to_sppcs import partition_to_sppcs
from repro.core.reductions.sppcs_to_sqocp import (
    SQOCPReduction,
    sppcs_to_sqocp,
)

__all__ = [
    "VCReduction",
    "sat_to_vertex_cover",
    "CliqueReduction",
    "sat_to_clique",
    "TwoThirdsCliqueReduction",
    "sat_to_two_thirds_clique",
    "FNReduction",
    "clique_to_qon",
    "FHReduction",
    "clique_to_qoh",
    "SparseFNReduction",
    "SparseFHReduction",
    "sparse_clique_to_qon",
    "sparse_clique_to_qoh",
    "partition_to_sppcs",
    "SQOCPReduction",
    "sppcs_to_sqocp",
]
