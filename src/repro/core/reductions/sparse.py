"""Sparse-query-graph reductions f_{N,e} and f_{H,e} (paper Section 6).

The dense reductions of Sections 4-5 produce query graphs with
``n^2/2 - Theta(n)`` edges.  Section 6 shows the gaps survive when the
edge count is forced to match any prescribed function ``e(m)`` with
``m + Theta(m^tau) <= e(m) <= m(m-1)/2 - Theta(m^tau)``:

* pad the vertex set with an auxiliary *connected* graph ``G_2`` until
  the query graph has ``m = n^k`` vertices (``k = Theta(2/tau)``) and
  exactly ``e(m)`` edges;
* bridge ``G_2`` to the original graph with a single edge;
* give the auxiliary relations a much smaller size ``u = beta^n`` and
  their edges the mild selectivity ``1/beta`` (``beta = 4``), while
  the original sub-instance keeps its huge ``alpha``-scaled numbers.

The auxiliary side then perturbs every cost by at most ``alpha^{O(1)}``
(the paper's Theorems 16-17): the cartesian product of all auxiliary
relations is ``u^{n^k} = beta^{n^{k+1}} <= alpha^{O(1)}`` once
``alpha >= beta^{n^{2k+2}}`` — the dominance condition, which the
constructors check explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional

from repro.core.gap import k_cd
from repro.core.reductions.clique_to_qoh import FHReduction, clique_to_qoh
from repro.graphs.generators import connected_graph_with_edges
from repro.graphs.graph import Graph
from repro.hashjoin.cost_model import HashJoinCostModel
from repro.hashjoin.instance import QOHInstance
from repro.joinopt.instance import QONInstance
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import ValidationError, require
from repro.observability.tracer import traced

EdgeBudget = Callable[[int], int]


def choose_k(tau: float) -> int:
    """The paper's ``k = Theta(2/tau)`` — we take ``ceil(2/tau)``."""
    require(0 < tau <= 1, "tau must lie in (0, 1]")
    return max(2, math.ceil(2.0 / tau))


def _fit_k(
    n: int,
    tau: float,
    edge_budget: Optional[EdgeBudget],
    reserved_vertices: int,
    base_edges: int,
) -> tuple[int, int, int, int]:
    """Find ``k >= ceil(2/tau)`` whose padding can realize the budget.

    The paper's ``k = Theta(2/tau)`` leaves the constant free; for
    small ``n`` the minimal ``k`` may give too few auxiliary vertices
    to host ``e(m) - base`` edges, so we raise it until the auxiliary
    graph fits (it always eventually does: aux capacity grows like
    ``n^{2k}`` while the default budget grows like ``n^{k tau}``).

    Returns ``(k, m, budget, aux_edges)``.
    """
    for k in range(choose_k(tau), choose_k(tau) + 8):
        m = n**k
        budget = (
            m + math.ceil(m**tau) if edge_budget is None else edge_budget(m)
        )
        aux_vertices = m - reserved_vertices
        aux_edges = budget - base_edges
        if aux_vertices < 1:
            continue
        if aux_edges < aux_vertices - 1:
            continue  # not enough edges to even connect the padding
        if aux_edges > aux_vertices * (aux_vertices - 1) // 2:
            continue  # padding too small to host the budget
        if budget > m * (m - 1) // 2:
            continue
        return k, m, budget, aux_edges
    raise ValidationError(
        f"no k in [{choose_k(tau)}, {choose_k(tau) + 7}] realizes the edge "
        f"budget for n={n}, tau={tau}"
    )


def _validate_edge_budget(m: int, budget: int, base_edges: int, extra: int) -> None:
    """``e(m)`` must leave room for a connected auxiliary graph and
    stay below the complete graph."""
    require(
        budget <= m * (m - 1) // 2,
        f"edge budget {budget} exceeds the complete graph on {m} vertices",
    )
    require(
        budget >= base_edges + extra,
        f"edge budget {budget} too small: need at least "
        f"{base_edges + extra} to keep the auxiliary graph connected",
    )


@dataclass(frozen=True)
class SparseFNReduction:
    """Output of f_{N,e}."""

    instance: QONInstance
    source_graph: Graph
    query_graph: Graph
    alpha: int
    beta: int
    k: int
    k_yes: int
    k_no: int
    relation_size: int  # t, for the original relations
    aux_relation_size: int  # u = beta^n
    edge_access_cost: int  # w = t / alpha on original edges
    parity_adjusted: bool
    dominance_ok: bool

    @property
    def n(self) -> int:
        """Vertex count of the *source* CLIQUE graph."""
        return self.source_graph.num_vertices

    @property
    def m(self) -> int:
        """Vertex count of the padded query graph (the paper's n^k)."""
        return self.query_graph.num_vertices

    def yes_cost_bound(self) -> int:
        """``K_{c,d}(alpha, n)`` — unchanged by the padding (Thm 16)."""
        return k_cd(self.alpha, self.edge_access_cost, self.k_yes, self.k_no)

    def aux_perturbation_log2(self) -> Fraction:
        """``log2`` of the worst-case multiplicative perturbation the
        auxiliary side can add: the full cartesian product
        ``u^{|V_2|} = beta^{n |V_2|}``."""
        aux_vertices = self.m - self.n
        beta_log2 = self.beta.bit_length() - 1
        return Fraction(beta_log2) * self.n * aux_vertices


@traced("reduce.sparse_f_N")
def sparse_clique_to_qon(
    graph: Graph,
    k_yes: int,
    k_no: int,
    tau: float = 0.5,
    edge_budget: Optional[EdgeBudget] = None,
    alpha: Optional[int] = None,
    beta: int = 4,
    rng: RngLike = None,
) -> SparseFNReduction:
    """Apply f_{N,e} to a CLIQUE gap instance.

    Args:
        graph: the CLIQUE instance on ``n`` vertices.
        k_yes / k_no: the clique promise, as in
            :func:`~repro.core.reductions.clique_to_qon.clique_to_qon`.
        tau: the sparsity exponent; ``k = ceil(2 / tau)``.
        edge_budget: the target function ``e(m)``; defaults to
            ``m + ceil(m ** tau)`` — the sparsest admissible family.
        alpha: blow-up base; defaults to the paper's dominance choice
            ``beta ** (n ** (2k + 2))``.  *Warning*: that default is
            astronomically large for n > 3; pass a smaller perfect
            square for exact experiments and check ``dominance_ok``.
        beta: the auxiliary base (paper: 4).
    """
    n = graph.num_vertices
    require(n >= 2, "need at least two source vertices")
    require(1 <= k_no < k_yes <= n, "need 1 <= k_no < k_yes <= n")
    require(beta >= 2, "beta must be at least 2")
    k, m, budget, aux_edges = _fit_k(
        n, tau, edge_budget, reserved_vertices=n,
        base_edges=graph.num_edges + 1,
    )
    aux_vertices = m - n
    _validate_edge_budget(m, budget, graph.num_edges + 1, aux_vertices - 1)

    if alpha is None:
        alpha = beta ** (n ** (2 * k + 2))
    require(alpha >= 4, "alpha must be at least 4")
    sqrt_alpha = math.isqrt(alpha)
    require(sqrt_alpha * sqrt_alpha == alpha, "alpha must be a perfect square")
    dominance_ok = alpha >= beta ** (n ** (2 * k + 2) if n > 1 else 1)

    parity_adjusted = False
    if (k_yes + k_no) % 2 != 0:
        k_no += 1
        parity_adjusted = True
        require(k_no < k_yes, "parity adjustment closed the gap entirely")

    t = sqrt_alpha ** (k_yes + k_no)
    w, remainder = divmod(t, alpha)
    require(remainder == 0, "t must be a multiple of alpha")
    u = beta**n

    # Query graph: source vertices keep ids 0..n-1; auxiliary vertices
    # are n..m-1; one bridge edge {0, n}.
    generator = make_rng(rng)
    aux = connected_graph_with_edges(aux_vertices, aux_edges, generator)
    edges = list(graph.edges)
    edges.extend((a + n, b + n) for a, b in aux.edges)
    bridge = (0, n)
    edges.append(bridge)
    query_graph = Graph(m, edges)
    require(query_graph.num_edges == budget, "edge budget not met exactly")

    selectivities = {}
    access_costs = {}
    for i, j in graph.edges:
        selectivities[(i, j)] = Fraction(1, alpha)
        access_costs[(i, j)] = w
        access_costs[(j, i)] = w
    for a, b in aux.edges:
        selectivities[(a + n, b + n)] = Fraction(1, beta)
        access_costs[(a + n, b + n)] = u // beta
        access_costs[(b + n, a + n)] = u // beta
    selectivities[bridge] = Fraction(1, beta)
    access_costs[(0, n)] = u // beta  # probe into the auxiliary side
    access_costs[(n, 0)] = t // beta  # probe into the original side

    sizes = [t] * n + [u] * aux_vertices
    instance = QONInstance(
        query_graph, sizes, selectivities, access_costs, validate=False
    )
    return SparseFNReduction(
        instance=instance,
        source_graph=graph,
        query_graph=query_graph,
        alpha=alpha,
        beta=beta,
        k=k,
        k_yes=k_yes,
        k_no=k_no,
        relation_size=t,
        aux_relation_size=u,
        edge_access_cost=w,
        parity_adjusted=parity_adjusted,
        dominance_ok=dominance_ok,
    )


@dataclass(frozen=True)
class SparseFHReduction:
    """Output of f_{H,e}."""

    instance: QOHInstance
    source_graph: Graph
    query_graph: Graph
    alpha: int
    k: int
    satellite_size: int  # t
    hub_size: int  # t0
    aux_relation_size: int
    epsilon: Optional[Fraction]
    dominance_ok: bool

    @property
    def n(self) -> int:
        return self.source_graph.num_vertices

    @property
    def m(self) -> int:
        return self.query_graph.num_vertices


@traced("reduce.sparse_f_H")
def sparse_clique_to_qoh(
    graph: Graph,
    epsilon: Optional[Fraction] = None,
    tau: float = 0.5,
    edge_budget: Optional[EdgeBudget] = None,
    alpha: Optional[int] = None,
    hub_exponent: int = 13,
    model: HashJoinCostModel = HashJoinCostModel(),
    rng: RngLike = None,
) -> SparseFHReduction:
    """Apply f_{H,e} to a 2/3-CLIQUE instance.

    Construction per Section 6.2: ``V = V_1 + {v_0} + V_2`` with
    ``|V_2| = n^k - n - 1``; edges ``E_1`` (selectivity ``1/alpha``),
    the hub edges ``v_0 - V_1`` (selectivity ``1/2^n``), the auxiliary
    edges and the bridge (selectivity ``1/2``); auxiliary relation
    sizes ``2^n``.
    """
    n = graph.num_vertices
    require(n >= 3 and n % 3 == 0, "f_{H,e} needs n divisible by 3")
    k, m, budget, aux_edges = _fit_k(
        n, tau, edge_budget, reserved_vertices=n + 1,
        base_edges=graph.num_edges + n + 1,
    )
    aux_vertices = m - n - 1
    _validate_edge_budget(m, budget, graph.num_edges + n + 1, aux_vertices - 1)

    if alpha is None:
        alpha = 4 ** (n ** (k + 1))
    require(alpha >= 4, "alpha must be at least 4")
    sqrt_alpha = math.isqrt(alpha)
    require(sqrt_alpha * sqrt_alpha == alpha, "alpha must be a perfect square")
    dominance_ok = alpha >= 2 ** (2 * n * (m - n))

    t = sqrt_alpha ** (n - 1)
    t0 = (n * t) ** hub_exponent
    memory = (n // 3 - 1) * t + 2 * model.hjmin(t)
    require(
        model.hjmin(t0) > memory,
        "t0 too small: the hub could be hashed, breaking the reduction",
    )
    u = 2**n

    # Relation ids: hub v_0 = 0, original vertex i -> i + 1, auxiliary
    # vertex a -> n + 1 + a.  Bridge edge {1, n + 1}.
    generator = make_rng(rng)
    aux = connected_graph_with_edges(aux_vertices, aux_edges, generator)
    edges = [(i + 1, j + 1) for i, j in graph.edges]
    edges.extend((0, i + 1) for i in range(n))
    edges.extend((a + n + 1, b + n + 1) for a, b in aux.edges)
    bridge = (1, n + 1)
    edges.append(bridge)
    query_graph = Graph(m, edges)
    require(query_graph.num_edges == budget, "edge budget not met exactly")

    selectivities = {}
    for i, j in graph.edges:
        selectivities[(i + 1, j + 1)] = Fraction(1, alpha)
    for i in range(n):
        selectivities[(0, i + 1)] = Fraction(1, u)  # 1 / 2^n
    for a, b in aux.edges:
        selectivities[(a + n + 1, b + n + 1)] = Fraction(1, 2)
    selectivities[bridge] = Fraction(1, 2)

    sizes = [t0] + [t] * n + [u] * aux_vertices
    instance = QOHInstance(
        query_graph, sizes, selectivities, memory=memory, model=model
    )
    return SparseFHReduction(
        instance=instance,
        source_graph=graph,
        query_graph=query_graph,
        alpha=alpha,
        k=k,
        satellite_size=t,
        hub_size=t0,
        aux_relation_size=u,
        epsilon=epsilon,
        dominance_ok=dominance_ok,
    )
