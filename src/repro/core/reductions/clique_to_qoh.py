"""f_H: 2/3-CLIQUE -> QO_H (paper Section 5).

Given a graph ``G`` on ``n`` vertices (``n`` divisible by 3), promised
to have either a clique of ``2n/3`` vertices or none larger than
``(2 - eps) n / 3``, build the QO_H instance:

* query graph ``G' = G`` plus a fresh hub ``v_0`` adjacent to every
  vertex (``v_0`` is relation index 0; original vertex ``i`` becomes
  relation ``i + 1``);
* ``t = alpha ** ((n-1)/2)`` tuples for every original relation,
  ``t_0 = (n t) ** 13`` for the hub — so large that no memory budget
  can hash it, pinning ``R_0`` to the head of every feasible sequence;
* selectivity ``1/alpha`` on original edges, ``1/2`` on hub edges;
* memory ``M = (n/3 - 1) t + 2 hjmin(t)`` — one pipeline can hold
  ``n/3 - 1`` full hash tables plus two starved ones.

Then (Lemmas 11-14): YES instances admit a five-pipeline plan of cost
``O(L(alpha, n))`` with ``L = t0 * alpha^{n^2/9}``, while NO instances
force ``Omega(G(alpha, n))`` with ``G = L * alpha^{n eps/3 - 1}``.

The paper sets ``t_0 = Theta((n t)^{13})``; any exponent making
``hjmin(t_0) > M`` works, and 13 with ``psi = 1/2`` does comfortably.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional

from repro.core.gap import default_alpha_exponent, g_bound_log2, l_bound_log2
from repro.graphs.graph import Graph
from repro.hashjoin.cost_model import HashJoinCostModel
from repro.hashjoin.instance import QOHInstance
from repro.utils.lognum import log2_of
from repro.utils.validation import require
from repro.observability.tracer import traced


@dataclass(frozen=True)
class FHReduction:
    """Output of f_H, with all reduction parameters retained."""

    instance: QOHInstance
    source_graph: Graph
    alpha: int
    satellite_size: int  # t
    hub_size: int  # t0
    epsilon: Optional[Fraction]
    hub_exponent: int

    @property
    def n(self) -> int:
        """Vertex count of the *source* graph (the paper's n)."""
        return self.source_graph.num_vertices

    @property
    def alpha_log2(self) -> int:
        return self.alpha.bit_length() - 1

    def l_bound_log2(self) -> Fraction:
        """``log2 L(alpha, n)`` — the YES-side cost scale."""
        return l_bound_log2(self.alpha_log2, log2_of(self.hub_size), self.n)

    def g_bound_log2(self) -> Optional[Fraction]:
        """``log2 G(alpha, n)`` — the NO-side floor (needs epsilon)."""
        if self.epsilon is None:
            return None
        return g_bound_log2(
            self.alpha_log2, log2_of(self.hub_size), self.n, self.epsilon
        )


@traced("reduce.f_H")
def clique_to_qoh(
    graph: Graph,
    epsilon: Optional[Fraction] = None,
    alpha: Optional[int] = None,
    delta: float = 1.0,
    hub_exponent: int = 13,
    model: HashJoinCostModel = HashJoinCostModel(),
) -> FHReduction:
    """Apply f_H to a 2/3-CLIQUE instance.

    Args:
        graph: the 2/3-CLIQUE instance; ``num_vertices`` divisible by 3.
        epsilon: NO-side promise slack (clique <= (2 - eps) n / 3);
            None for YES-promise sources.
        alpha: blow-up base, perfect square >= 4; the paper wants
            ``Omega(4^n)`` — default ``4 ** (n * ceil(n ** (1/delta) / n))``
            is simply ``4 ** ceil(n ** (1/delta))`` (delta=1 gives 4^n).
        hub_exponent: the ``13`` in ``t0 = (n t) ** 13``.
        model: hash-join cost model; its ``psi`` must satisfy
            ``hjmin(t0) > M`` (checked).
    """
    n = graph.num_vertices
    require(n >= 3 and n % 3 == 0, "f_H needs n divisible by 3")
    if alpha is None:
        alpha = 1 << default_alpha_exponent(n, delta)
    require(alpha >= 4, "alpha must be at least 4")
    sqrt_alpha = math.isqrt(alpha)
    require(sqrt_alpha * sqrt_alpha == alpha, "alpha must be a perfect square")

    t = sqrt_alpha ** (n - 1)
    t0 = (n * t) ** hub_exponent
    memory = (n // 3 - 1) * t + 2 * model.hjmin(t)
    require(memory > 0, "memory must be positive (need n >= 6 or hjmin > 0)")
    require(
        model.hjmin(t0) > memory,
        "t0 too small: the hub could be hashed, breaking the reduction "
        "(raise hub_exponent or the cost model's psi)",
    )

    # Hub is relation 0; original vertex i becomes relation i + 1.
    edges = [(u + 1, v + 1) for u, v in graph.edges]
    hub_edges = [(0, i + 1) for i in range(n)]
    query_graph = Graph(n + 1, edges + hub_edges)

    selectivities = {}
    for u, v in graph.edges:
        selectivities[(u + 1, v + 1)] = Fraction(1, alpha)
    for i in range(n):
        selectivities[(0, i + 1)] = Fraction(1, 2)

    instance = QOHInstance(
        query_graph,
        [t0] + [t] * n,
        selectivities,
        memory=memory,
        model=model,
    )
    return FHReduction(
        instance=instance,
        source_graph=graph,
        alpha=alpha,
        satellite_size=t,
        hub_size=t0,
        epsilon=epsilon,
        hub_exponent=hub_exponent,
    )
