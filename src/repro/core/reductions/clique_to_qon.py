"""f_N: CLIQUE -> QO_N (paper Section 4).

Given a (dense) graph ``G`` on ``n`` vertices, promised to have either
a clique of ``k_yes = c n`` vertices or none larger than
``k_no = (c - d) n``, build the QO_N instance:

* query graph ``Q = G``;
* every selectivity on an edge is ``1 / alpha``;
* every relation size is ``t = alpha ** ((c - d/2) n)
  = sqrt(alpha) ** (k_yes + k_no)``;
* edge access costs ``w = t / alpha`` (the model's lower bound);
  non-edges pay the full scan ``t``.

Then (Lemmas 6 and 8):

* YES: the sequence "clique first" costs at most
  ``K = K_{c,d}(alpha, n) = w * alpha^{B(B+1)/2 + 1}``, ``B = (c-d/2)n``;
* NO: *every* sequence costs at least ``K * alpha^{dn/2 - 1}``.

Integrality: we require ``alpha`` to be a perfect square and
``k_yes + k_no`` even; the constructor bumps ``k_no`` up by one when
the parity fails (weakening the NO bound by one vertex — sound, and
recorded on the result).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro.core.gap import default_alpha_exponent, k_cd, no_side_lower_bound
from repro.graphs.graph import Graph
from repro.joinopt.instance import QONInstance
from repro.utils.validation import require
from repro.observability.tracer import traced


@dataclass(frozen=True)
class FNReduction:
    """Output of f_N, with all reduction parameters retained."""

    instance: QONInstance
    graph: Graph
    alpha: int
    k_yes: int
    k_no: int
    relation_size: int  # t
    edge_access_cost: int  # w = t / alpha
    parity_adjusted: bool

    @property
    def n(self) -> int:
        return self.graph.num_vertices

    @property
    def c(self) -> Fraction:
        return Fraction(self.k_yes, self.n)

    @property
    def d(self) -> Fraction:
        return Fraction(self.k_yes - self.k_no, self.n)

    @property
    def alpha_log2(self) -> int:
        return self.alpha.bit_length() - 1

    def yes_cost_bound(self) -> int:
        """``K_{c,d}(alpha, n)`` — Lemma 6's certificate budget."""
        return k_cd(self.alpha, self.edge_access_cost, self.k_yes, self.k_no)

    def no_cost_lower_bound(self) -> int:
        """``K * alpha^{dn/2 - 1}`` — Lemma 8's floor for NO instances."""
        return no_side_lower_bound(
            self.alpha, self.edge_access_cost, self.k_yes, self.k_no
        )


@traced("reduce.f_N")
def clique_to_qon(
    graph: Graph,
    k_yes: int,
    k_no: int,
    alpha: Optional[int] = None,
    delta: float = 1.0,
) -> FNReduction:
    """Apply f_N to a CLIQUE gap instance.

    Args:
        graph: the CLIQUE instance (ideally dense/connected; the
            reduction itself imposes no structural requirement).
        k_yes: the YES-promise clique size (``c n``).
        k_no: the NO-promise clique bound (``(c - d) n``), strictly
            below ``k_yes``.
        alpha: the blow-up base; must be a perfect square >= 4.
            Defaults to ``4 ** ceil(n ** (1/delta))``.
        delta: exponent knob for the default alpha (paper: the gap
            becomes ``2^{log^{1-delta'} K}``).
    """
    n = graph.num_vertices
    require(n >= 2, "need at least two relations")
    require(1 <= k_no < k_yes <= n, "need 1 <= k_no < k_yes <= n")
    if alpha is None:
        alpha = 1 << default_alpha_exponent(n, delta)
    require(alpha >= 4, "alpha must be at least 4 (Lemma 6 uses a >= 4)")
    sqrt_alpha = math.isqrt(alpha)
    require(sqrt_alpha * sqrt_alpha == alpha, "alpha must be a perfect square")

    parity_adjusted = False
    if (k_yes + k_no) % 2 != 0:
        k_no += 1
        parity_adjusted = True
        require(k_no < k_yes, "parity adjustment closed the gap entirely")

    t = sqrt_alpha ** (k_yes + k_no)
    w, remainder = divmod(t, alpha)
    require(remainder == 0, "t must be a multiple of alpha")

    selectivity = Fraction(1, alpha)
    selectivities = {edge: selectivity for edge in graph.edges}
    access_costs = {}
    for i, j in graph.edges:
        access_costs[(i, j)] = w
        access_costs[(j, i)] = w
    instance = QONInstance(
        graph,
        [t] * n,
        selectivities,
        access_costs,
        validate=False,  # bounds hold by construction; skip O(m) big-int checks
    )
    return FNReduction(
        instance=instance,
        graph=graph,
        alpha=alpha,
        k_yes=k_yes,
        k_no=k_no,
        relation_size=t,
        edge_access_cost=w,
        parity_adjusted=parity_adjusted,
    )
