"""Lemma 4: 3SAT(13) -> 2/3-CLIQUE.

Same skeleton as Lemma 3 but the padding is sized so the YES-side
clique lands *exactly* on two thirds of the vertex count:

* ``G_vc`` on ``n_vc = 2v + 3m`` vertices, ``omega(G_vc^c) = v + maxsat``;
* add ``n1 = v + 3m`` universal vertices (this is the paper's
  ``(3 gamma - 1) |V|`` with ``gamma = (v + 2m) / (2v + 3m)``);
* total ``n = 3(v + 2m)``; YES clique = ``2v + 4m = 2n/3``;
* NO clique ``<= 2n/3 - theta m = (2 - eps) n / 3`` with
  ``eps = theta m / (v + 2m)``.

``n`` is always divisible by 3, which the downstream f_H reduction
(Section 5) needs for its ``n/3``-join pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import ceil
from typing import List, Optional

from repro.core.reductions.sat_to_vc import VCReduction, sat_to_vertex_cover
from repro.graphs.graph import Graph
from repro.sat.cnf import Assignment, CNFFormula
from repro.sat.gapfamilies import GapFormula
from repro.utils.validation import require
from repro.observability.tracer import traced


@dataclass(frozen=True)
class TwoThirdsCliqueReduction:
    """Output of the Lemma 4 reduction.

    Attributes:
        graph: the 2/3-CLIQUE instance; ``num_vertices`` divisible by 3.
        target: the 2/3 threshold, ``2n/3``.
        clique_bound_if_gap: NO-side upper bound ``(2 - eps) n / 3``.
        vc_step: the intermediate VERTEX COVER reduction.
        padding: number of universal vertices appended.
    """

    graph: Graph
    target: int
    clique_bound_if_gap: Optional[int]
    vc_step: VCReduction
    padding: int

    @property
    def epsilon(self) -> Optional[Fraction]:
        """The NO-side slack ``eps`` with bound ``(2 - eps) n / 3``."""
        if self.clique_bound_if_gap is None:
            return None
        n = self.graph.num_vertices
        return Fraction(3 * (self.target - self.clique_bound_if_gap), n)

    def clique_from_assignment(self, assignment: Assignment) -> List[int]:
        """A 2n/3 clique from a satisfying assignment.

        As in Lemma 3: false literal vertices + one true triangle
        corner per clause + the universal padding.
        """
        vc = self.vc_step
        members: List[int] = []
        for var in range(1, vc.num_variables + 1):
            false_literal = -var if assignment.get(var, False) else var
            members.append(vc.literal_vertex[false_literal])
        for clause, corners in zip(vc.formula, vc.triangle_vertices):
            for position, literal in enumerate(clause):
                if assignment.get(abs(literal), False) == (literal > 0):
                    members.append(corners[position])
                    break
        base_n = vc.graph.num_vertices
        members.extend(range(base_n, base_n + self.padding))
        return sorted(members)


@traced("reduce.sat_to_two_thirds_clique")
def sat_to_two_thirds_clique(
    source: GapFormula | CNFFormula,
) -> TwoThirdsCliqueReduction:
    """Apply the Lemma 4 reduction to a (gap) 3SAT formula.

    Requires exactly-3-literal clauses so the ``2n/3`` arithmetic is
    exact (the paper's 3SAT(13) instances satisfy this).
    """
    if isinstance(source, GapFormula):
        formula = source.formula
        theta = source.theta
        satisfiable = source.satisfiable
    else:
        formula = source
        theta = None
        satisfiable = None
    require(
        formula.is_exactly_3cnf(),
        "Lemma 4 needs exactly-3-literal clauses for the 2n/3 arithmetic",
    )

    vc = sat_to_vertex_cover(formula)
    v = formula.num_vars
    m = formula.num_clauses
    complement = vc.graph.complement()
    padding = v + 3 * m
    graph = complement.add_universal_vertices(padding)

    n = graph.num_vertices
    require(n == 3 * (v + 2 * m), "internal arithmetic error in Lemma 4")
    target = 2 * n // 3
    clique_no: Optional[int] = None
    if theta is not None and not satisfiable:
        deficit = ceil(theta * m)
        clique_no = target - deficit
        require(clique_no >= 1, "gap exceeds the clique size")
    return TwoThirdsCliqueReduction(
        graph=graph,
        target=target,
        clique_bound_if_gap=clique_no,
        vc_step=vc,
        padding=padding,
    )
