"""PARTITION -> SPPCS (paper Appendix A.5).

The extended abstract prints a construction whose correctness proof is
deferred to an unavailable internal report [7], and whose constants are
further damaged by OCR.  Implemented verbatim
(:func:`partition_to_sppcs_verbatim`), the printed thresholds do *not*
separate YES from NO instances: the optimal subset is always
``{anchor, last padding item}`` regardless of the b-values (see
EXPERIMENTS.md, EXP-A).  This module therefore also provides a
*repaired* reduction (:func:`partition_to_sppcs`) in the same spirit —
a truncated-exponential multiplicative encoding, polynomial in the
input encoding — with a complete correctness argument below.

Repaired construction
---------------------

Given ``b_1 .. b_n`` with even total ``K >= 4`` (smaller totals are
decided directly), let ``p = floor(log2 2K) + 1`` and
``q = 2p + 7 + n`` exactly as printed, and write
``g(x) = floor(2^q e^{x / 2K})``.  Build ``2n - 1`` SPPCS items:

* *real* items ``i = 1..n``: ``p_i = g(b_i)``, ``c_i = C0 + S b_i``;
* *padding* items (``n - 1`` of them): ``p = 2^q = g(0)``, ``c = C0``;

with the cardinality forcer ``C0 = 2^{q n + floor(q/2)}``, the slope
``S = floor(2^{q(n-1)} g(K/2) / 2K)`` (an integer approximation of
``2^{qn} e^{1/4} / 2K``), the product cap
``U = floor(2^{qn} e^{1/4}) + 1`` and the bound
``L = U + S K/2 + (n - 1) C0``.

Why it is correct (sketch, fully verified empirically in the suite):

* every subset ``A`` with ``|A| != n`` overshoots: dropping below ``n``
  leaves an extra ``C0`` in the complement sum, exceeding ``L`` because
  ``C0 > U + SK/2``; exceeding ``n`` multiplies the product past
  ``2^{q(n+1)}/2 > L``;
* for ``|A| = n`` with real-item sum ``x``, the objective is
  ``P(A) + (n-1) C0 + S (K - x)`` where
  ``P(A) = 2^{qn} e^{x/2K} (1 - O(n 2^{-q}))``.  The function
  ``2^{qn} e^{x/2K} - Sx`` is strictly convex with its real minimum at
  ``x ~ K/2`` and second-order margin ``2^{qn} / Theta(K^2)`` per unit
  of ``|x - K/2|^2`` — far larger than every truncation error, since
  ``2^q >= 512 K^2 2^n`` by the choice of ``q``.  Hence the bound ``L``
  is met exactly when some size-compensated subset has ``x = K/2``,
  i.e. when the PARTITION instance is a YES instance (any subset with
  sum ``K/2`` extends to ``|A| = n`` using padding items, since at
  most ``n - 1`` padding items are ever needed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence, Tuple

from repro.starqo.partition import PartitionInstance
from repro.starqo.sppcs import SPPCSInstance
from repro.utils.validation import require
from repro.observability.tracer import traced


def floor_pow2_exp(x: Fraction, q: int) -> int:
    """``floor(2^q * e^x)`` computed rigorously for ``0 <= x <= 1``.

    Uses the Taylor series with an explicit remainder bound, refining
    until the floor is certain.
    """
    require(0 <= x <= 1, "floor_pow2_exp expects x in [0, 1]")
    require(q >= 0, "q must be non-negative")
    scale = 1 << q
    terms = 8
    while True:
        partial = Fraction(0)
        term = Fraction(1)
        for j in range(terms):
            partial += term
            term = term * x / (j + 1)
        # Remainder of e^x for x in [0, 1] is below 3 * (next term).
        remainder = term * 3
        low = math.floor(partial * scale)
        high = math.floor((partial + remainder) * scale)
        if low == high:
            return low
        terms += 8


@dataclass(frozen=True)
class SPPCSConstruction:
    """A constructed SPPCS instance plus its derived constants."""

    source: PartitionInstance
    instance: SPPCSInstance
    p: int
    q: int
    scale: int  # S
    total: int  # K
    variant: str  # "repaired" or "verbatim"

    @property
    def num_real_items(self) -> int:
        return len(self.source.values)


def _paper_pq(total: int, n: int) -> Tuple[int, int]:
    """The paper's ``p = floor(log2 2K) + 1`` and ``q = 2p + 7 + n``."""
    p = (2 * total).bit_length()  # floor(log2 2K) + 1 for K >= 1
    q = 2 * p + 7 + n
    return p, q


@traced("reduce.partition_to_sppcs")
def partition_to_sppcs(source: PartitionInstance) -> SPPCSConstruction:
    """The repaired PARTITION -> SPPCS reduction (see module docstring).

    A certified many-one reduction: the SPPCS instance meets its bound
    iff the PARTITION instance has an exact half-total split.
    """
    values = source.values
    n = len(values)
    require(n >= 1, "PARTITION instance must be non-empty")
    big_k = sum(values)
    if big_k < 4:
        # Tiny totals (0 or 2): decide directly and emit a fixed
        # trivially-equivalent instance.
        yes = _tiny_partition_decision(values, big_k)
        pairs = [(2, 1)]
        bound = 3 if yes else 1  # objective of {} is 1+1=2, of {0} is 2
        return SPPCSConstruction(
            source=source,
            instance=SPPCSInstance(pairs, bound),
            p=0,
            q=0,
            scale=0,
            total=big_k,
            variant="repaired",
        )

    p, q = _paper_pq(big_k, n)

    def g(x: int | Fraction) -> int:
        return floor_pow2_exp(Fraction(x, 2 * big_k), q)

    forcer = 1 << (q * n + q // 2)  # C0
    slope = ((1 << (q * (n - 1))) * g(Fraction(big_k, 2))) // (2 * big_k)  # S
    cap = floor_pow2_exp(Fraction(1, 4), q * n) + 1  # U >= 2^{qn} e^{1/4}

    pairs = []
    for value in values:
        pairs.append((g(value), forcer + slope * value))
    for _ in range(n - 1):
        pairs.append((1 << q, forcer))
    bound = cap + slope * (big_k // 2) + (n - 1) * forcer

    return SPPCSConstruction(
        source=source,
        instance=SPPCSInstance(pairs, bound),
        p=p,
        q=q,
        scale=slope,
        total=big_k,
        variant="repaired",
    )


def _tiny_partition_decision(values: Sequence[int], total: int) -> bool:
    """Decide PARTITION directly for totals below 4."""
    if total == 0:
        return True
    # total == 2: need a subset summing to 1 — impossible for the
    # even-valued instances this variant uses, possible iff some
    # value equals 1.
    return 1 in values


def partition_to_sppcs_verbatim(source: PartitionInstance) -> SPPCSConstruction:
    """The Appendix A.5 construction exactly as printed.

    Retained for the record: with the printed constants the bound
    fails to separate YES from NO instances (EXPERIMENTS.md, EXP-A).
    Constants follow the OCR text: ``S = g_q(K/2)``, real items
    ``(g_q(b_i), 3SK + b_i S)``, padding ``(2^q, (i-n) 3SK)``, anchor
    ``(2K, 2K prod p_i + 1)`` and
    ``L = 3KS/2 + n(n-1) 3KS/2 + 2K + SK``.
    """
    values = source.values
    n = len(values)
    require(n >= 1, "PARTITION instance must be non-empty")
    big_k = sum(values)
    require(big_k >= 1, "verbatim construction needs a positive total")
    p, q = _paper_pq(big_k, n)

    def g_q(x: int | Fraction) -> int:
        return floor_pow2_exp(Fraction(x, 2 * big_k), q)

    scale = g_q(Fraction(big_k, 2))  # S

    pairs = []
    for value in values:
        pairs.append((g_q(value), 3 * scale * big_k + value * scale))
    for index in range(n + 1, 2 * n):
        pairs.append((1 << q, (index - n) * 3 * scale * big_k))
    anchor_product = 1
    for pair in pairs:
        anchor_product *= pair[0]
    pairs.append((2 * big_k, 2 * big_k * anchor_product + 1))

    bound = (
        3 * big_k * scale // 2
        + n * (n - 1) * 3 * big_k * scale // 2
        + 2 * big_k
        + scale * big_k
    )
    return SPPCSConstruction(
        source=source,
        instance=SPPCSInstance(pairs, bound),
        p=p,
        q=q,
        scale=scale,
        total=big_k,
        variant="verbatim",
    )
