"""SPPCS -> SQO-CP (paper Appendix B).

Given SPPCS pairs ``(p_1, c_1) .. (p_m, c_m)`` and bound ``L`` (with
``p_i >= 2`` and ``c_i >= 1``, WLOG per the paper), build the star
query over ``R_0, R_1 .. R_{m+1}``:

* ``k_s = 4``; ``J = (4 k_s prod p_i)^2``; ``U = sum c_i + prod p_i + 1``;
* page size ``P = (m + 1) d`` for an even join-attribute size ``d``;
* tuples: ``n_0 = 5 J^2 U``, ``n_i = (m+1) n_0 J^2 c_i``,
  ``n_{m+1} = (m+1) n_0 J^2 U``;
* pages ``b_0 = n_0``, ``b_i = n_i d / P = n_i / (m+1)``;
* sort costs ``A_i = b_i k_s``;
* selectivities ``s_i = p_i / n_i``, ``s_{m+1} = J / n_{m+1}``;
* nested-loops access costs ``w_i = J k_s p_i``, ``w_{m+1} = J^2 k_s``,
  ``w_{0,i} = n_0``;
* threshold ``M = n_0 J^2 k_s (L + 1) - 1``.

Why it works: because ``s_i = p_i / n_i``, the intermediate tuple count
after joining ``R_0`` with a satellite set ``X`` is exactly
``n_0 * prod_{i in X} p_i`` — SQO-CP intermediates *are* subset
products.  In the intended plan, ``R_0`` leads, the satellites of the
SPPCS subset ``A`` follow via nested loops (each costing a factor ``J``
below the main scale), ``R_{m+1}`` joins via nested loops at cost
``n_0 J^2 k_s * prod_A p_i`` — the product term — and the complement
satellites follow via sort-merge at ``A_j ~ n_0 J^2 k_s * c_j`` each —
the complement-sum terms.  Every plan's cost is
``n_0 J^2 k_s * (subset objective) + lower-order``, with the
lower-order terms below one ``n_0 J^2 k_s`` unit by the choice of
``J``, so ``cost <= M`` iff some subset meets ``L``.

OCR repair note: the printed appendix shows the relation-size exponent
as an unreadable glyph (``J>``/``J%``).  Exponent 3 makes the
sort-merge terms ``n_0 J^3 k_s c_j`` — a factor ``J`` *above* the
threshold scale, so no YES instance can ever meet ``M``; exponent 2 is
the unique choice aligning the ``c_j`` terms with the product term, and
the empirical verification (EXP-B) confirms exact YES/NO agreement on
every enumerable instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Tuple

from repro.starqo.instance import SQOCPInstance
from repro.starqo.sppcs import SPPCSInstance
from repro.utils.validation import require

#: Relation sizes scale with J to this power (see the OCR repair note).
_J_EXPONENT = 2


@dataclass(frozen=True)
class SQOCPReduction:
    """The constructed SQO-CP instance plus derived constants."""

    source: SPPCSInstance
    instance: SQOCPInstance
    j_constant: int  # J
    u_constant: int  # U
    threshold: int  # M

    def unit(self) -> int:
        """One SPPCS-objective unit of plan cost: ``n_0 J^2 k_s``."""
        return (
            self.instance.tuples(0)
            * self.j_constant**2
            * self.instance.sort_passes
        )


def sppcs_to_sqocp(source: SPPCSInstance, attribute_size: int = 2) -> SQOCPReduction:
    """Build the Appendix B SQO-CP instance for an SPPCS instance."""
    m = source.size
    require(m >= 1, "SPPCS instance must be non-empty")
    for p, c in source.pairs:
        require(p >= 2, "Appendix B assumes p_i >= 2 (WLOG)")
        require(c >= 1, "Appendix B assumes c_i >= 1 (WLOG)")
    require(
        attribute_size >= 2 and attribute_size % 2 == 0,
        "join-attribute size d must be even and positive",
    )

    sort_passes = 4  # k_s
    product_p = 1
    sum_c = 0
    for p, c in source.pairs:
        product_p *= p
        sum_c += c
    j_constant = (4 * sort_passes * product_p) ** 2
    u_constant = sum_c + product_p + 1
    j_scale = j_constant**_J_EXPONENT

    page_size = (m + 1) * attribute_size
    n0 = 5 * j_scale * u_constant
    tuples = [n0]
    pages = [n0]  # b_0 = n_0
    for p, c in source.pairs:
        n_i = (m + 1) * n0 * j_scale * c
        tuples.append(n_i)
        pages.append(n_i * attribute_size // page_size)  # = n0 J^2 c_i
    n_last = (m + 1) * n0 * j_scale * u_constant
    tuples.append(n_last)
    pages.append(n_last * attribute_size // page_size)  # = n0 J^2 U

    sort_costs = [b * sort_passes for b in pages]

    selectivities = []
    for index, (p, _) in enumerate(source.pairs, start=1):
        selectivities.append(Fraction(p, tuples[index]))
    selectivities.append(Fraction(j_constant, n_last))

    satellite_access = [j_constant * sort_passes * p for p, _ in source.pairs]
    satellite_access.append(j_constant**2 * sort_passes)

    center_access = [n0] * (m + 1)

    threshold = n0 * j_constant**2 * sort_passes * (source.bound + 1) - 1

    instance = SQOCPInstance(
        num_satellites=m + 1,
        sort_passes=sort_passes,
        page_size=page_size,
        tuples=tuples,
        pages=pages,
        sort_costs=sort_costs,
        selectivities=selectivities,
        satellite_access=satellite_access,
        center_access=center_access,
        threshold=threshold,
    )
    return SQOCPReduction(
        source=source,
        instance=instance,
        j_constant=j_constant,
        u_constant=u_constant,
        threshold=threshold,
    )
