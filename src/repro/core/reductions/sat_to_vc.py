"""The Garey-Johnson reduction 3SAT -> VERTEX COVER (paper Theorem 2).

For a 3CNF formula with ``v`` variables and ``m`` clauses, build:

* a *variable gadget* per variable: vertices for the literals ``x`` and
  ``not x`` joined by an edge;
* a *clause gadget* per clause: a triangle;
* a *communication edge* from each triangle corner to the vertex of the
  literal it stands for.

The graph has ``2v + 3m`` vertices and ``v + 3m + 3m`` edges, and the
exact identity

    tau(G) = v + 3m - maxsat(F)

holds, where ``maxsat`` is the maximum number of simultaneously
satisfiable clauses.  Hence satisfiable formulas give covers of size
``v + 2m`` and formulas with at most ``(1 - theta) m`` satisfiable
clauses force covers of size at least ``v + 2m + theta m`` — exactly
the two properties Theorem 2 needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.graphs.graph import Graph
from repro.sat.cnf import Assignment, CNFFormula
from repro.utils.validation import require
from repro.observability.tracer import traced


@dataclass(frozen=True)
class VCReduction:
    """Output of the 3SAT -> VERTEX COVER reduction.

    Attributes:
        formula: the source formula.
        graph: the constructed graph.
        literal_vertex: maps a literal (signed int) to its vertex.
        triangle_vertices: per clause, its three triangle corners (in
            clause-literal order).
        cover_size_if_satisfiable: ``v + 2m``.
    """

    formula: CNFFormula
    graph: Graph
    literal_vertex: Dict[int, int]
    triangle_vertices: Tuple[Tuple[int, ...], ...]
    cover_size_if_satisfiable: int

    @property
    def num_variables(self) -> int:
        return self.formula.num_vars

    @property
    def num_clauses(self) -> int:
        return self.formula.num_clauses

    def expected_cover_size(self, satisfied_clauses: int) -> int:
        """``tau`` induced by an assignment satisfying that many clauses.

        ``v + sum_j |clause_j| - satisfied`` — for exactly-3 clauses
        this is the paper's ``v + 3m - maxsat``.
        """
        total_literals = sum(len(clause) for clause in self.formula)
        return self.num_variables + total_literals - satisfied_clauses

    def assignment_from_cover(self, cover: Sequence[int]) -> Assignment:
        """The inverse witness direction: a cover of the minimal size
        ``v + 2m`` (exactly-3 clauses) induces a satisfying assignment.

        A minimal cover takes exactly one literal vertex per variable
        and two corners per triangle; setting each covered literal true
        satisfies every clause (the omitted corner's communication edge
        forces its literal's vertex into the cover).  For larger covers
        the construction still returns the literal-based assignment,
        but without the satisfaction guarantee.
        """
        cover_set = set(cover)
        assignment: Assignment = {}
        for var in range(1, self.num_variables + 1):
            positive = self.literal_vertex[var]
            negative = self.literal_vertex[-var]
            if positive in cover_set and negative not in cover_set:
                assignment[var] = True
            elif negative in cover_set and positive not in cover_set:
                assignment[var] = False
            else:
                # Both or neither covered (non-minimal cover): default.
                assignment[var] = positive in cover_set
        return assignment

    def cover_from_assignment(self, assignment: Assignment) -> List[int]:
        """The canonical cover induced by an assignment.

        True literal vertices, plus two triangle corners per satisfied
        clause (omitting one true corner) and all three corners per
        unsatisfied clause.
        """
        cover: Set[int] = set()
        for var in range(1, self.num_variables + 1):
            literal = var if assignment.get(var, False) else -var
            cover.add(self.literal_vertex[literal])
        for clause, corners in zip(self.formula, self.triangle_vertices):
            true_positions = [
                position
                for position, literal in enumerate(clause)
                if assignment.get(abs(literal), False) == (literal > 0)
            ]
            if true_positions:
                omit = true_positions[0]
                cover.update(
                    corner
                    for position, corner in enumerate(corners)
                    if position != omit
                )
            else:
                cover.update(corners)
        return sorted(cover)


@traced("reduce.sat_to_vertex_cover")
def sat_to_vertex_cover(formula: CNFFormula) -> VCReduction:
    """Build the Garey-Johnson graph for a 3CNF formula.

    Clauses with fewer than three literals are allowed; their triangle
    degenerates to an edge or a single corner (still correct: a
    ``k``-literal clause gadget is a ``k``-clique).
    """
    require(formula.is_3cnf(), "reduction requires a 3CNF formula")
    require(formula.num_clauses >= 1, "formula must have at least one clause")
    for clause in formula:
        require(not clause.is_tautology(), "tautological clauses not allowed")
        require(len(clause) >= 1, "empty clauses not allowed")

    v = formula.num_vars
    literal_vertex: Dict[int, int] = {}
    edges: List[Tuple[int, int]] = []
    next_vertex = 0
    for var in range(1, v + 1):
        literal_vertex[var] = next_vertex
        literal_vertex[-var] = next_vertex + 1
        edges.append((next_vertex, next_vertex + 1))
        next_vertex += 2

    triangles: List[Tuple[int, ...]] = []
    for clause in formula:
        corners = tuple(range(next_vertex, next_vertex + len(clause)))
        next_vertex += len(clause)
        # Clause gadget: clique over the corners.
        for i in range(len(corners)):
            for j in range(i + 1, len(corners)):
                edges.append((corners[i], corners[j]))
        # Communication edges.
        for corner, literal in zip(corners, clause):
            edges.append((corner, literal_vertex[literal]))
        triangles.append(corners)

    graph = Graph(next_vertex, edges)
    total_literals = sum(len(clause) for clause in formula)
    return VCReduction(
        formula=formula,
        graph=graph,
        literal_vertex=literal_vertex,
        triangle_vertices=tuple(triangles),
        # v + sum_j (|clause_j| - 1); the paper's v + 2m for exactly-3.
        cover_size_if_satisfiable=v + total_literals - formula.num_clauses,
    )
