"""Typed, versioned, JSON-serializable request/reply objects.

The ``repro.api`` facade historically took kwarg sprawl —
``optimize(instance, algorithm=..., **kwargs)`` and a ``sweep`` with
eleven keyword arguments.  This module replaces that surface with three
frozen dataclasses that round-trip through JSON *exactly* (the
prerequisite for the ``repro.rpc/1`` wire protocol the service daemon
speaks):

* :class:`OptimizeRequest` — one optimizer on one instance;
* :class:`SweepSpec` — an optimizer x instance grid plus the runner
  settings that shape its outcomes;
* :class:`ServiceReply` — the service envelope carrying a decoded
  result (:class:`~repro.core.results.PlanResult`, a reconstructed
  :class:`~repro.runtime.runner.SweepResult`, or plain data) together
  with cache/dedup/backpressure metadata.

Exactness contract: every numeric travels through the same
string-encoded forms :mod:`repro.io` uses (decimal digits for ``int``,
``"num/den"`` for :class:`~fractions.Fraction`, ``repr`` floats for
:class:`~repro.utils.lognum.LogNumber` log2 magnitudes), so a decoded
:class:`PlanResult` equals the original in value, type *and* repr —
the bit-identity the service result cache is tested against.

Fingerprints: :meth:`OptimizeRequest.fingerprint` /
:meth:`SweepSpec.fingerprint` reuse the journal layer's stable
instance/optimizer hash (:func:`repro.runtime.journal.request_fingerprint`),
so the daemon's dedup map and result cache key on content, not on
object identity or arrival order.  The ``no_cache`` delivery flag is
deliberately excluded from the fingerprint — bypassing the cache must
not change what a request *is*.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import io
from repro.core.results import PlanResult
from repro.utils.lognum import LogNumber
from repro.utils.validation import ValidationError, require

#: Schema tag stamped on every request payload.
REQUEST_SCHEMA = "repro.request/1"

#: Schema tag stamped on every reply payload.
REPLY_SCHEMA = "repro.reply/1"

#: Reply delivery states.
REPLY_STATUSES = ("ok", "error", "rejected")


# ---------------------------------------------------------------------
# Scalar codec (request params and runner settings)
# ---------------------------------------------------------------------

_PLAIN_SCALARS = (bool, int, float, str)


def encode_value(value: Any) -> Any:
    """Encode one request parameter value as JSON-safe data.

    ``None``/``bool``/``int``/``float``/``str`` pass through (Python's
    ``json`` keeps arbitrary-precision ints and shortest-repr floats
    exact); :class:`Fraction` is tagged; flat lists/tuples recurse.
    Anything else is a validation error — request parameters must be
    wire-safe by construction.
    """
    if value is None or isinstance(value, _PLAIN_SCALARS):
        return value
    if isinstance(value, Fraction):
        return {"$kind": "fraction",
                "value": f"{value.numerator}/{value.denominator}"}
    if isinstance(value, tuple):
        return {"$kind": "tuple", "value": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    raise ValidationError(
        f"request parameter of type {type(value).__name__!r} is not "
        "JSON-serializable; pass int/float/str/bool/None/Fraction or "
        "flat lists/tuples of those"
    )


def decode_value(payload: Any) -> Any:
    """Invert :func:`encode_value` exactly."""
    if payload is None or isinstance(payload, _PLAIN_SCALARS):
        return payload
    if isinstance(payload, list):
        return [decode_value(v) for v in payload]
    if isinstance(payload, dict):
        kind = payload.get("$kind")
        if kind == "fraction":
            numerator, denominator = payload["value"].split("/", 1)
            return Fraction(int(numerator), int(denominator))
        if kind == "tuple":
            return tuple(decode_value(v) for v in payload["value"])
        raise ValidationError(f"unknown tagged value kind {kind!r}")
    raise ValidationError(
        f"cannot decode request parameter payload {payload!r}"
    )


# ---------------------------------------------------------------------
# Cost codec (PlanResult.cost: int | Fraction | LogNumber | float)
# ---------------------------------------------------------------------


def encode_cost(value: Any) -> Dict[str, str]:
    """Encode a plan cost with its exact type preserved."""
    if isinstance(value, bool):
        raise ValidationError("a plan cost cannot be a bool")
    if isinstance(value, int):
        return {"kind": "int", "value": str(value)}
    if isinstance(value, Fraction):
        return {"kind": "fraction",
                "value": f"{value.numerator}/{value.denominator}"}
    if isinstance(value, LogNumber):
        # repr of a float round-trips exactly; "inf"/"-inf" included.
        return {"kind": "log2", "value": repr(value.log2)}
    if isinstance(value, float):
        return {"kind": "float", "value": repr(value)}
    raise ValidationError(
        f"cannot encode plan cost of type {type(value).__name__!r}"
    )


def decode_cost(payload: Dict[str, str]) -> Any:
    """Invert :func:`encode_cost` bit-identically."""
    require(isinstance(payload, dict), "cost payload must be a dict")
    kind = payload.get("kind")
    text = payload.get("value")
    require(isinstance(text, str), "cost payload value must be a string")
    assert isinstance(text, str)
    if kind == "int":
        return int(text)
    if kind == "fraction":
        numerator, denominator = text.split("/", 1)
        return Fraction(int(numerator), int(denominator))
    if kind == "log2":
        return LogNumber.from_log2(float(text))
    if kind == "float":
        return float(text)
    raise ValidationError(f"unknown cost kind {kind!r}")


# ---------------------------------------------------------------------
# Plan codec (PlanResult.plan: None | PipelineDecomposition | StarPlan)
# ---------------------------------------------------------------------


def encode_plan(plan: Any) -> Optional[Dict[str, Any]]:
    """Encode the substrate-specific plan object, or None."""
    if plan is None:
        return None
    from repro.hashjoin.pipeline import PipelineDecomposition
    from repro.starqo.instance import StarPlan

    if isinstance(plan, PipelineDecomposition):
        return {
            "kind": "pipelines",
            "pipelines": [
                [pipeline.first_join, pipeline.last_join]
                for pipeline in plan.pipelines
            ],
        }
    if isinstance(plan, StarPlan):
        return {
            "kind": "star",
            "sequence": list(plan.sequence),
            "methods": [method.value for method in plan.methods],
        }
    raise ValidationError(
        f"cannot encode plan of type {type(plan).__name__!r}"
    )


def decode_plan(payload: Optional[Dict[str, Any]]) -> Any:
    """Invert :func:`encode_plan` exactly."""
    if payload is None:
        return None
    require(isinstance(payload, dict), "plan payload must be a dict")
    kind = payload.get("kind")
    if kind == "pipelines":
        from repro.hashjoin.pipeline import Pipeline, PipelineDecomposition

        return PipelineDecomposition(tuple(
            Pipeline(first, last) for first, last in payload["pipelines"]
        ))
    if kind == "star":
        from repro.starqo.instance import JoinMethod, StarPlan

        return StarPlan(
            sequence=tuple(payload["sequence"]),
            methods=tuple(JoinMethod(m) for m in payload["methods"]),
        )
    raise ValidationError(f"unknown plan kind {kind!r}")


# ---------------------------------------------------------------------
# PlanResult codec
# ---------------------------------------------------------------------


def result_to_dict(result: PlanResult) -> Dict[str, Any]:
    """Encode a :class:`PlanResult` for the wire, exactly."""
    return {
        "type": "plan_result",
        "cost": encode_cost(result.cost),
        "sequence": list(result.sequence),
        "optimizer": result.optimizer,
        "explored": result.explored,
        "is_exact": result.is_exact,
        "plan": encode_plan(result.plan),
        "trace": result.trace,
    }


def result_from_dict(payload: Dict[str, Any]) -> PlanResult:
    """Decode :func:`result_to_dict` output into an equal result.

    The round-trip preserves value, type and repr for every field —
    the service-cache bit-identity contract.
    """
    require(isinstance(payload, dict), "result payload must be a dict")
    require(
        payload.get("type") == "plan_result",
        f"result payload type must be 'plan_result', "
        f"got {payload.get('type')!r}",
    )
    return PlanResult(
        cost=decode_cost(payload["cost"]),
        sequence=tuple(payload["sequence"]),
        optimizer=payload["optimizer"],
        explored=payload["explored"],
        is_exact=payload["is_exact"],
        plan=decode_plan(payload["plan"]),
        trace=payload.get("trace"),
    )


# ---------------------------------------------------------------------
# Sweep outcome / result codec
# ---------------------------------------------------------------------


def outcome_to_dict(outcome: Any) -> Dict[str, Any]:
    """Encode one :class:`~repro.runtime.runner.TaskOutcome`.

    Mirrors the journal record layout but stays pickle-free: the plan
    result travels through the typed codec, and per-task span trees
    stay on the server (the reply-level trace covers the request).
    """
    return {
        "index": outcome.index,
        "optimizer": outcome.optimizer,
        "label": outcome.label,
        "ok": outcome.ok,
        "timed_out": outcome.timed_out,
        "error": outcome.error,
        "failure": outcome.failure,
        "attempts": outcome.attempts,
        "wall_time_s": outcome.wall_time,
        "explored": outcome.explored,
        "cache": outcome.cache.to_dict(),
        "result": (
            result_to_dict(outcome.result)
            if isinstance(outcome.result, PlanResult) else None
        ),
    }


def outcome_from_dict(payload: Dict[str, Any]) -> Any:
    """Decode :func:`outcome_to_dict` output into a real TaskOutcome."""
    from repro.runtime.costcache import CacheStats
    from repro.runtime.runner import TaskOutcome

    cache = payload["cache"]
    result = None
    if payload["result"] is not None:
        result = result_from_dict(payload["result"])
    return TaskOutcome(
        index=payload["index"],
        optimizer=payload["optimizer"],
        label=payload["label"],
        result=result,
        wall_time=payload["wall_time_s"],
        timed_out=payload["timed_out"],
        error=payload["error"],
        failure=payload["failure"],
        attempts=payload["attempts"],
        cache=CacheStats(
            hits=cache["hits"],
            misses=cache["misses"],
            evictions=cache["evictions"],
            size=cache["size"],
            peak_size=cache["peak_size"],
        ),
        trace=None,
    )


def sweep_result_to_dict(result: Any) -> Dict[str, Any]:
    """Encode a :class:`~repro.runtime.runner.SweepResult`."""
    return {
        "type": "sweep_result",
        "mode": result.mode,
        "workers": result.workers,
        "cache_enabled": result.cache_enabled,
        "wall_time_s": result.wall_time,
        "retries": result.retries,
        "recovered_workers": result.recovered_workers,
        "resumed": result.resumed,
        "executor": result.executor.to_dict(),
        "outcomes": [outcome_to_dict(outcome) for outcome in result],
    }


def sweep_result_from_dict(payload: Dict[str, Any]) -> Any:
    """Decode into a real :class:`SweepResult` (traces stay remote)."""
    from repro.runtime.runner import ExecutorStats, SweepResult

    require(
        payload.get("type") == "sweep_result",
        f"sweep payload type must be 'sweep_result', "
        f"got {payload.get('type')!r}",
    )
    # Additive: payloads encoded before executor stats existed decode
    # to all-zero counters.
    executor = payload.get("executor") or {}
    return SweepResult(
        outcomes=tuple(
            outcome_from_dict(entry) for entry in payload["outcomes"]
        ),
        mode=payload["mode"],
        workers=payload["workers"],
        cache_enabled=payload["cache_enabled"],
        wall_time=payload["wall_time_s"],
        retries=payload["retries"],
        recovered_workers=payload["recovered_workers"],
        resumed=payload["resumed"],
        executor=ExecutorStats(
            ship_bytes=executor.get("ship_bytes", 0),
            registry_hits=executor.get("registry_hits", 0),
            kernels_compiled=executor.get("kernels_compiled", 0),
            chunks=executor.get("chunks", 0),
        ),
    )


# ---------------------------------------------------------------------
# OptimizeRequest
# ---------------------------------------------------------------------

Params = Tuple[Tuple[str, Any], ...]


@dataclass(frozen=True)
class OptimizeRequest:
    """One optimizer run on one instance, as plain data.

    ``params`` holds the per-optimizer keyword arguments as a sorted
    item tuple (hashable, deterministic repr); build one with
    :meth:`build` to normalize kwargs.  ``no_cache`` asks the service
    to bypass its result cache for this delivery — it is *not* part of
    the request's identity (:meth:`fingerprint`).

    ``trace_id``/``parent_span`` carry the caller's trace context
    across the RPC boundary: the daemon stitches its server-side span
    subtree under ``parent_span`` of the distributed trace named by
    ``trace_id``.  Like ``no_cache`` they are delivery metadata,
    excluded from the fingerprint — tracing a request must not change
    what it *is* (or which cache entry answers it).
    """

    instance: Any
    algorithm: str = "dp"
    params: Params = ()
    no_cache: bool = False
    trace_id: Optional[str] = None
    parent_span: Optional[int] = None

    @classmethod
    def build(
        cls,
        instance: Any,
        algorithm: str = "dp",
        no_cache: bool = False,
        trace_id: Optional[str] = None,
        parent_span: Optional[int] = None,
        **kwargs: Any,
    ) -> "OptimizeRequest":
        """Normalize an old-style kwarg call into a request object."""
        return cls(
            instance=instance,
            algorithm=algorithm,
            params=tuple(sorted(kwargs.items())),
            no_cache=no_cache,
            trace_id=trace_id,
            parent_span=parent_span,
        )

    def kwargs(self) -> Dict[str, Any]:
        """The params as the keyword mapping the optimizer receives."""
        return dict(self.params)

    def fingerprint(self) -> str:
        """Stable content hash (journal-layer identity); delivery
        flags excluded."""
        from repro.runtime.journal import request_fingerprint

        return request_fingerprint(
            "optimize",
            self.instance,
            optimizer=self.algorithm,
            params=self.params,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REQUEST_SCHEMA,
            "type": "optimize_request",
            "instance": io.to_dict(self.instance),
            "algorithm": self.algorithm,
            "params": [
                [name, encode_value(value)] for name, value in self.params
            ],
            "no_cache": self.no_cache,
            "trace_id": self.trace_id,
            "parent_span": self.parent_span,
        }

    def to_json(self) -> str:
        """Exact JSON form (deterministic key order)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "OptimizeRequest":
        validate_request(payload)
        require(
            payload["type"] == "optimize_request",
            f"expected an optimize_request payload, got {payload['type']!r}",
        )
        return cls(
            instance=io.from_dict(payload["instance"]),
            algorithm=payload["algorithm"],
            params=tuple(
                (name, decode_value(value))
                for name, value in payload["params"]
            ),
            no_cache=payload["no_cache"],
            # Additive: payloads encoded before trace contexts existed
            # decode to an untraced request.
            trace_id=payload.get("trace_id"),
            parent_span=payload.get("parent_span"),
        )

    @classmethod
    def from_json(cls, text: str) -> "OptimizeRequest":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------
# SweepSpec
# ---------------------------------------------------------------------

#: Per-cell kwargs: ``(optimizer name, instance label, sorted items)``.
CellParams = Tuple[Tuple[str, str, Params], ...]


@dataclass(frozen=True)
class SweepSpec:
    """An optimizer x instance grid plus the runner settings.

    The serializable replacement for ``api.sweep``'s kwarg sprawl.
    ``params`` materializes the old ``kwargs_for`` hook as per-cell
    data; :meth:`kwargs_for` turns it back into the hook
    :func:`~repro.runtime.runner.grid_tasks` expects.  Host-local
    operational arguments (journal path, resume, fault plans) stay
    *outside* the spec — a spec must be safe to accept over a socket.
    """

    optimizers: Tuple[str, ...]
    instances: Tuple[Tuple[str, Any], ...]
    params: CellParams = ()
    workers: Optional[int] = None
    cache: bool = True
    cache_maxsize: Optional[int] = None
    timeout: Optional[float] = None
    trace: bool = False
    retries: int = 1
    backoff: float = 0.0
    no_cache: bool = False

    @classmethod
    def build(
        cls,
        optimizers: Sequence[str],
        instances: Sequence[Tuple[str, Any]],
        params: Optional[Mapping[Tuple[str, str], Mapping[str, Any]]] = None,
        **settings: Any,
    ) -> "SweepSpec":
        """Normalize sequences/mappings into the frozen spec form."""
        cells: List[Tuple[str, str, Params]] = []
        for (name, label), kwargs in sorted((params or {}).items()):
            if not kwargs:
                continue
            cells.append((name, label, tuple(sorted(kwargs.items()))))
        return cls(
            optimizers=tuple(optimizers),
            instances=tuple((label, inst) for label, inst in instances),
            params=tuple(cells),
            **settings,
        )

    def kwargs_for(self, name: str, label: str) -> Dict[str, Any]:
        """The per-cell kwargs hook, reconstructed from the data."""
        for cell_name, cell_label, items in self.params:
            if cell_name == name and cell_label == label:
                return dict(items)
        return {}

    def fingerprint(self) -> str:
        """Stable content hash over every cell plus the runner
        settings that shape the reply (counters depend on workers and
        cache configuration, so those are part of the identity)."""
        from repro.runtime.journal import instance_token, request_fingerprint

        tokens = "+".join(
            f"{label}:{instance_token(instance)}"
            for label, instance in self.instances
        )
        extra = (
            f"optimizers={self.optimizers!r}|params={self.params!r}|"
            f"workers={self.workers}|cache={self.cache}|"
            f"cache_maxsize={self.cache_maxsize}|timeout={self.timeout}|"
            f"trace={self.trace}|retries={self.retries}|"
            f"backoff={self.backoff}"
        )
        return request_fingerprint("sweep", tokens, extra=extra)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REQUEST_SCHEMA,
            "type": "sweep_spec",
            "optimizers": list(self.optimizers),
            "instances": [
                [label, io.to_dict(instance)]
                for label, instance in self.instances
            ],
            "params": [
                [name, label,
                 [[key, encode_value(value)] for key, value in items]]
                for name, label, items in self.params
            ],
            "workers": self.workers,
            "cache": self.cache,
            "cache_maxsize": self.cache_maxsize,
            "timeout": self.timeout,
            "trace": self.trace,
            "retries": self.retries,
            "backoff": self.backoff,
            "no_cache": self.no_cache,
        }

    def to_json(self) -> str:
        """Exact JSON form (deterministic key order)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SweepSpec":
        validate_request(payload)
        require(
            payload["type"] == "sweep_spec",
            f"expected a sweep_spec payload, got {payload['type']!r}",
        )
        return cls(
            optimizers=tuple(payload["optimizers"]),
            instances=tuple(
                (label, io.from_dict(entry))
                for label, entry in payload["instances"]
            ),
            params=tuple(
                (name, label, tuple(
                    (key, decode_value(value)) for key, value in items
                ))
                for name, label, items in payload["params"]
            ),
            workers=payload["workers"],
            cache=payload["cache"],
            cache_maxsize=payload["cache_maxsize"],
            timeout=payload["timeout"],
            trace=payload["trace"],
            retries=payload["retries"],
            backoff=payload["backoff"],
            no_cache=payload["no_cache"],
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------
# Request payload validation
# ---------------------------------------------------------------------

_REQUEST_TYPES = ("optimize_request", "sweep_spec")

_OPTIMIZE_FIELDS: Dict[str, type] = {
    "instance": dict,
    "algorithm": str,
    "params": list,
    "no_cache": bool,
}

_SWEEP_FIELDS: Dict[str, type] = {
    "optimizers": list,
    "instances": list,
    "params": list,
    "cache": bool,
    "trace": bool,
    "retries": int,
    "backoff": (int, float),  # type: ignore[dict-item]
    "no_cache": bool,
}


def validate_request(payload: Dict[str, Any]) -> None:
    """Schema-check a request payload; raises :class:`ValidationError`.

    Shared by :meth:`OptimizeRequest.from_dict` /
    :meth:`SweepSpec.from_dict` and the service's frame handler, so a
    malformed request is rejected with a message instead of a stack
    trace deep inside a decoder.
    """
    require(isinstance(payload, dict), "request payload must be a dict")
    require(
        payload.get("schema") == REQUEST_SCHEMA,
        f"request schema must be {REQUEST_SCHEMA!r}, "
        f"got {payload.get('schema')!r}",
    )
    kind = payload.get("type")
    require(
        kind in _REQUEST_TYPES,
        f"request type must be one of {list(_REQUEST_TYPES)}, got {kind!r}",
    )
    fields = _OPTIMIZE_FIELDS if kind == "optimize_request" else _SWEEP_FIELDS
    for name, expected in fields.items():
        require(name in payload, f"request: missing field {name!r}")
        value = payload[name]
        ok = isinstance(value, expected) and not (
            expected is not bool and isinstance(value, bool)
        )
        require(
            ok,
            f"request.{name}: expected {expected}, "
            f"got {type(value).__name__}",
        )
    if kind == "optimize_request":
        # Optional trace-context delivery metadata (additive fields).
        trace_id = payload.get("trace_id")
        require(
            trace_id is None or isinstance(trace_id, str),
            "request.trace_id must be null or a string",
        )
        parent_span = payload.get("parent_span")
        require(
            parent_span is None
            or (isinstance(parent_span, int)
                and not isinstance(parent_span, bool)
                and parent_span >= 0),
            "request.parent_span must be null or a non-negative int",
        )
    if kind == "sweep_spec":
        for name in ("workers", "cache_maxsize"):
            require(name in payload, f"request: missing field {name!r}")
            value = payload[name]
            require(
                value is None
                or (isinstance(value, int) and not isinstance(value, bool)),
                f"request.{name} must be null or an int",
            )
        require("timeout" in payload, "request: missing field 'timeout'")
        timeout = payload["timeout"]
        require(
            timeout is None
            or (isinstance(timeout, (int, float))
                and not isinstance(timeout, bool)),
            "request.timeout must be null or a number",
        )


# ---------------------------------------------------------------------
# ServiceReply
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceReply:
    """The service's answer to one request.

    ``status`` is ``"ok"`` (result attached), ``"error"`` (the
    computation failed; ``error`` says why) or ``"rejected"``
    (admission control; ``retry_after`` suggests when to come back —
    a rejected request is *never* silently dropped).  ``cached`` and
    ``coalesced`` report how the result was produced; ``counters``
    carries the request span tree's counter totals and
    ``trace_records`` the tree itself when the request asked for it.
    """

    op: str
    status: str = "ok"
    result: Any = None
    error: Optional[str] = None
    retry_after: Optional[float] = None
    cached: bool = False
    coalesced: bool = False
    fingerprint: Optional[str] = None
    wall_time_s: float = 0.0
    counters: Tuple[Tuple[str, int], ...] = ()
    trace_records: Optional[Tuple[Dict[str, Any], ...]] = field(
        default=None, compare=False
    )

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def rejected(self) -> bool:
        return self.status == "rejected"

    def _encode_result(self) -> Any:
        if self.result is None:
            return None
        if isinstance(self.result, PlanResult):
            return result_to_dict(self.result)
        if isinstance(self.result, dict):
            return {"type": "data", "value": self.result}
        # Anything else must quack like a SweepResult.
        return sweep_result_to_dict(self.result)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPLY_SCHEMA,
            "type": "service_reply",
            "op": self.op,
            "status": self.status,
            "result": self._encode_result(),
            "error": self.error,
            "retry_after": self.retry_after,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "fingerprint": self.fingerprint,
            "wall_time_s": self.wall_time_s,
            "counters": {name: value for name, value in self.counters},
            "trace_records": (
                [dict(record) for record in self.trace_records]
                if self.trace_records is not None else None
            ),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ServiceReply":
        validate_reply(payload)
        encoded = payload["result"]
        result: Any = None
        if encoded is not None:
            kind = encoded.get("type")
            if kind == "plan_result":
                result = result_from_dict(encoded)
            elif kind == "sweep_result":
                result = sweep_result_from_dict(encoded)
            elif kind == "data":
                result = encoded["value"]
            else:
                raise ValidationError(f"unknown reply result type {kind!r}")
        return cls(
            op=payload["op"],
            status=payload["status"],
            result=result,
            error=payload["error"],
            retry_after=payload["retry_after"],
            cached=payload["cached"],
            coalesced=payload["coalesced"],
            fingerprint=payload["fingerprint"],
            wall_time_s=payload["wall_time_s"],
            counters=tuple(sorted(payload["counters"].items())),
            trace_records=(
                tuple(dict(record) for record in payload["trace_records"])
                if payload["trace_records"] is not None else None
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "ServiceReply":
        return cls.from_dict(json.loads(text))


_REPLY_FIELDS: Dict[str, type] = {
    "op": str,
    "status": str,
    "cached": bool,
    "coalesced": bool,
    "wall_time_s": (int, float),  # type: ignore[dict-item]
    "counters": dict,
}


def validate_reply(payload: Dict[str, Any]) -> None:
    """Schema-check a reply payload; raises :class:`ValidationError`."""
    require(isinstance(payload, dict), "reply payload must be a dict")
    require(
        payload.get("schema") == REPLY_SCHEMA,
        f"reply schema must be {REPLY_SCHEMA!r}, "
        f"got {payload.get('schema')!r}",
    )
    require(
        payload.get("type") == "service_reply",
        f"reply type must be 'service_reply', got {payload.get('type')!r}",
    )
    for name, expected in _REPLY_FIELDS.items():
        require(name in payload, f"reply: missing field {name!r}")
        value = payload[name]
        ok = isinstance(value, expected) and not (
            expected is not bool and isinstance(value, bool)
        )
        require(
            ok,
            f"reply.{name}: expected {expected}, got {type(value).__name__}",
        )
    require(
        payload["status"] in REPLY_STATUSES,
        f"reply.status must be one of {list(REPLY_STATUSES)}, "
        f"got {payload['status']!r}",
    )
    for name in ("error", "fingerprint"):
        require(name in payload, f"reply: missing field {name!r}")
        value = payload[name]
        require(
            value is None or isinstance(value, str),
            f"reply.{name} must be null or a string",
        )
    require("retry_after" in payload, "reply: missing field 'retry_after'")
    retry_after = payload["retry_after"]
    require(
        retry_after is None
        or (isinstance(retry_after, (int, float))
            and not isinstance(retry_after, bool)),
        "reply.retry_after must be null or a number",
    )
    require("result" in payload, "reply: missing field 'result'")
    require(
        payload["result"] is None or isinstance(payload["result"], dict),
        "reply.result must be null or a dict",
    )
    require(
        payload["status"] == "ok" or payload["result"] is None
        or payload["result"].get("type") == "data",
        "a non-ok reply carries no computed result",
    )
    require(
        "trace_records" in payload, "reply: missing field 'trace_records'"
    )
    require(
        payload["trace_records"] is None
        or isinstance(payload["trace_records"], list),
        "reply.trace_records must be null or a list of span dicts",
    )


__all__ = [
    "REPLY_SCHEMA",
    "REPLY_STATUSES",
    "REQUEST_SCHEMA",
    "OptimizeRequest",
    "ServiceReply",
    "SweepSpec",
    "decode_cost",
    "decode_plan",
    "decode_value",
    "encode_cost",
    "encode_plan",
    "encode_value",
    "outcome_from_dict",
    "outcome_to_dict",
    "result_from_dict",
    "result_to_dict",
    "sweep_result_from_dict",
    "sweep_result_to_dict",
    "validate_reply",
    "validate_request",
]
