"""Constructive YES-side witnesses (Lemma 6 and Lemma 12).

These build the *cheap plans* whose existence the YES side of each gap
theorem asserts, so benchmarks can evaluate their exact cost and
compare against ``K_{c,d}`` / ``L(alpha, n)`` without any search.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.reductions.clique_to_qoh import FHReduction
from repro.core.reductions.clique_to_qon import FNReduction
from repro.graphs.graph import Graph
from repro.core.results import PlanResult
from repro.hashjoin.pipeline import PipelineDecomposition, decomposition_cost
from repro.utils.validation import require


def _connected_completion(
    graph: Graph, prefix: List[int]
) -> List[int]:
    """Extend ``prefix`` to a full order, each new vertex adjacent to
    the prefix when possible (avoiding cartesian products)."""
    order = list(prefix)
    in_order = set(order)
    remaining = [v for v in graph.vertices() if v not in in_order]
    while remaining:
        pick = None
        for candidate in remaining:
            if any(graph.has_edge(candidate, earlier) for earlier in order):
                pick = candidate
                break
        if pick is None:
            # Disconnected graph: a cartesian product is unavoidable.
            pick = remaining[0]
        order.append(pick)
        in_order.add(pick)
        remaining.remove(pick)
    return order


def qon_certificate_sequence(
    reduction: FNReduction, clique: Sequence[int]
) -> Tuple[int, ...]:
    """The Lemma 6 join sequence: clique first, then connected fill.

    ``clique`` must be a clique of the reduction's query graph with at
    least ``k_yes`` vertices (extra members are fine — only the first
    ``k_yes`` drive the bound; we keep them all in front).
    """
    graph = reduction.graph
    members = list(dict.fromkeys(clique))
    require(
        len(members) >= reduction.k_yes,
        f"certificate clique must have >= k_yes = {reduction.k_yes} vertices",
    )
    for index, u in enumerate(members):
        for v in members[index + 1 :]:
            require(graph.has_edge(u, v), "certificate set is not a clique")
    return tuple(_connected_completion(graph, members))


def qoh_certificate_plan(
    reduction: FHReduction, clique: Sequence[int]
) -> PlanResult:
    """The Lemma 12 plan: ``v_0``, then the 2n/3 clique, then the rest,
    split into the five pipelines P(1,1), P(2, n/3), P(n/3+1, 2n/3),
    P(2n/3+1, n-1), P(n, n).

    ``clique`` uses *source-graph* vertex ids (0-based, pre-shift).
    Returns the full plan with its exact cost.
    """
    n = reduction.n
    require(n >= 6, "the five-pipeline certificate needs n >= 6")
    members = list(dict.fromkeys(clique))
    require(
        len(members) >= 2 * n // 3,
        f"certificate clique must have >= 2n/3 = {2 * n // 3} vertices",
    )
    source = reduction.source_graph
    for index, u in enumerate(members):
        for v in members[index + 1 :]:
            require(source.has_edge(u, v), "certificate set is not a clique")
    members = members[: 2 * n // 3]

    rest = [v for v in range(n) if v not in set(members)]
    # Shift to instance relation ids (+1; hub is 0).
    sequence = (0, *[v + 1 for v in members], *[v + 1 for v in rest])

    num_joins = n  # n + 1 relations
    third = n // 3
    breaks = sorted({1, third, 2 * third, num_joins - 1} - {num_joins})
    decomposition = PipelineDecomposition.from_breaks(num_joins, breaks)
    cost = decomposition_cost(reduction.instance, sequence, decomposition)
    require(cost is not None, "certificate decomposition is infeasible")
    return PlanResult(
        cost=cost,
        sequence=sequence,
        optimizer="lemma12-certificate",
        plan=decomposition,
    )
