"""The unified plan-search result type shared by all three substrates.

Historically each subsystem had its own result shape:

* ``joinopt.optimizers.base.OptimizerResult`` (QO_N),
* ``hashjoin.optimizer.QOHPlan`` (QO_H),
* ``starqo`` returned bare ``(cost, StarPlan)`` tuples (SQO-CP).

Every optimizer now returns :class:`PlanResult`; the old names remain
importable as deprecated aliases that warn once per process.

Field mapping:

* ``cost`` — the plan's cost (``int``/``Fraction`` in exact mode,
  ``LogNumber`` in log mode);
* ``sequence`` — the relation order;
* ``plan`` — the richer plan object when the substrate has one
  (``PipelineDecomposition`` for QO_H, ``StarPlan`` for SQO-CP,
  None for QO_N where the sequence *is* the plan);
* ``explored`` — (partial) plans examined, the work metric;
* ``is_exact`` — whether optimality is guaranteed;
* ``trace`` — optional reference into a ``repro.trace/1`` file (the
  span name or task label that produced this result).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Iterable, Optional, Set, Tuple


@dataclass(frozen=True)
class PlanResult:
    """Outcome of one plan-search run, for any substrate."""

    cost: object
    sequence: Tuple[int, ...]
    optimizer: str = ""
    explored: int = 0
    is_exact: bool = False
    plan: object = None
    trace: Optional[str] = field(default=None, compare=False)

    @property
    def decomposition(self) -> object:
        """The QO_H pipeline decomposition, when this result has one."""
        if self.plan is not None and hasattr(self.plan, "pipelines"):
            return self.plan
        return None

    def ratio_to(self, optimal_cost: object) -> float:
        """Competitive ratio against a known optimal cost.

        Computed in log2 domain so astronomically large costs work:
        returns ``2 ** (log2(cost) - log2(optimal))`` as a float, or
        ``inf`` when above float range.  Raises :class:`ValueError`
        when ``cost < optimal_cost`` — a "better than optimal" plan
        means the caller's optimum is wrong, and the old behaviour of
        silently underflowing ``2.0 ** gap_log2`` to 0.0 masked exactly
        that bug.
        """
        from repro.utils.lognum import log2_of

        if self.cost < optimal_cost:
            raise ValueError(
                f"plan cost {self.cost!r} is below the claimed optimum "
                f"{optimal_cost!r}; the reference cost is not optimal"
            )
        gap_log2 = log2_of(self.cost) - log2_of(optimal_cost)
        if gap_log2 > 1023:
            return float("inf")
        # cost >= optimal, so the true ratio is >= 1; clamp the float
        # noise log2_of can introduce for near-equal huge values.
        return max(1.0, 2.0 ** gap_log2)


_warned: Set[str] = set()


def _warn_once(old_name: str) -> None:
    if old_name in _warned:
        return
    _warned.add(old_name)
    warnings.warn(
        f"{old_name} is deprecated; use repro.core.results.PlanResult",
        DeprecationWarning,
        stacklevel=3,
    )


def _reset_deprecation_warnings() -> None:
    """Re-arm the warn-once latches (test helper)."""
    _warned.clear()


class OptimizerResult(PlanResult):
    """Deprecated alias of :class:`PlanResult` (old QO_N result type)."""

    def __init__(self, cost: object, sequence: Iterable[int] = (),
                 optimizer: str = "", explored: int = 0,
                 is_exact: bool = False, plan: object = None,
                 trace: Optional[str] = None) -> None:
        _warn_once("OptimizerResult")
        PlanResult.__init__(
            self, cost=cost, sequence=tuple(sequence), optimizer=optimizer,
            explored=explored, is_exact=is_exact, plan=plan, trace=trace,
        )


class QOHPlan(PlanResult):
    """Deprecated alias of :class:`PlanResult` (old QO_H result type).

    Accepts the historical ``decomposition=`` keyword, stored as
    ``plan`` (and still readable via the ``decomposition`` property).
    """

    def __init__(self, sequence: Iterable[int] = (),
                 decomposition: object = None, cost: object = 0,
                 explored: int = 0, optimizer: str = "",
                 is_exact: bool = False, plan: object = None,
                 trace: Optional[str] = None) -> None:
        _warn_once("QOHPlan")
        PlanResult.__init__(
            self, cost=cost, sequence=tuple(sequence), optimizer=optimizer,
            explored=explored, is_exact=is_exact,
            plan=decomposition if decomposition is not None else plan,
            trace=trace,
        )


def deprecated_alias(name: str) -> type:
    """Resolve a deprecated alias class by name, for the module-level
    ``__getattr__`` shims at the aliases' historical import homes
    (``repro.joinopt``, ``repro.hashjoin.optimizer``, ...).

    Those modules must not *statically* import the aliases — the
    ``repro lint`` pass (rule RPR003) forbids internal alias use — but
    ``from repro.hashjoin.optimizer import QOHPlan`` has to keep
    working for external callers until the aliases are removed.
    """
    if name in ("OptimizerResult", "QOHPlan"):
        alias = globals()[name]
        assert isinstance(alias, type)
        return alias
    raise AttributeError(f"no deprecated result alias named {name!r}")


__all__ = ["PlanResult", "OptimizerResult", "QOHPlan"]
