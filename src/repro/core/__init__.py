"""The paper's contribution: reductions, gap quantities, hardness chains.

Layout:

* :mod:`repro.core.reductions` — one module per reduction step
  (3SAT -> VERTEX COVER -> CLIQUE / 2/3-CLIQUE -> QO_N / QO_H, the
  sparse paddings of Section 6, and the appendix chain
  PARTITION -> SPPCS -> SQO-CP);
* :mod:`repro.core.gap` — the quantitative gap functions
  K_{c,d}(alpha, n), L(alpha, n), G(alpha, n) and the
  2^{log^{1-delta} K} budget they defeat;
* :mod:`repro.core.certificates` — constructive YES-side witnesses
  (the cheap join sequences of Lemma 6 and Lemma 12);
* :mod:`repro.core.chains` — end-to-end composed reductions with all
  intermediate artifacts retained for inspection;
* :mod:`repro.core.results` — the unified :class:`PlanResult` every
  optimizer returns.

Exports resolve lazily (PEP 562): :mod:`repro.core.results` must be
importable from the substrate packages (``hashjoin``, ``joinopt``,
``starqo``) that :mod:`repro.core.chains` itself builds on, so eagerly
importing the chains here would create an import cycle.
"""

from importlib import import_module

_EXPORTS = {
    "default_alpha_exponent": "repro.core.gap",
    "gap_factor_log2": "repro.core.gap",
    "k_cd": "repro.core.gap",
    "k_cd_log2": "repro.core.gap",
    "l_bound_log2": "repro.core.gap",
    "g_bound_log2": "repro.core.gap",
    "polylog_budget_log2": "repro.core.gap",
    "qoh_certificate_plan": "repro.core.certificates",
    "qon_certificate_sequence": "repro.core.certificates",
    "QONHardnessReport": "repro.core.report",
    "build_qon_report": "repro.core.report",
    "QOHHardnessInstance": "repro.core.chains",
    "QONHardnessInstance": "repro.core.chains",
    "hardness_chain_qoh": "repro.core.chains",
    "hardness_chain_qon": "repro.core.chains",
    "PlanResult": "repro.core.results",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> object:
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module), name)
    globals()[name] = value
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))
