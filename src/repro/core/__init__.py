"""The paper's contribution: reductions, gap quantities, hardness chains.

Layout:

* :mod:`repro.core.reductions` — one module per reduction step
  (3SAT -> VERTEX COVER -> CLIQUE / 2/3-CLIQUE -> QO_N / QO_H, the
  sparse paddings of Section 6, and the appendix chain
  PARTITION -> SPPCS -> SQO-CP);
* :mod:`repro.core.gap` — the quantitative gap functions
  K_{c,d}(alpha, n), L(alpha, n), G(alpha, n) and the
  2^{log^{1-delta} K} budget they defeat;
* :mod:`repro.core.certificates` — constructive YES-side witnesses
  (the cheap join sequences of Lemma 6 and Lemma 12);
* :mod:`repro.core.chains` — end-to-end composed reductions with all
  intermediate artifacts retained for inspection.
"""

from repro.core.gap import (
    default_alpha_exponent,
    gap_factor_log2,
    k_cd,
    k_cd_log2,
    l_bound_log2,
    g_bound_log2,
    polylog_budget_log2,
)
from repro.core.certificates import (
    qoh_certificate_plan,
    qon_certificate_sequence,
)
from repro.core.report import QONHardnessReport, build_qon_report
from repro.core.chains import (
    QOHHardnessInstance,
    QONHardnessInstance,
    hardness_chain_qoh,
    hardness_chain_qon,
)

__all__ = [
    "default_alpha_exponent",
    "gap_factor_log2",
    "k_cd",
    "k_cd_log2",
    "l_bound_log2",
    "g_bound_log2",
    "polylog_budget_log2",
    "qoh_certificate_plan",
    "qon_certificate_sequence",
    "QONHardnessReport",
    "build_qon_report",
    "QOHHardnessInstance",
    "QONHardnessInstance",
    "hardness_chain_qoh",
    "hardness_chain_qon",
]
