"""Machine verification of reduction promises.

Each function checks, end to end and with exact arithmetic, that a
constructed instance actually has the properties the corresponding
lemma promises — the consolidation of the assertions the benchmark
harness makes.  All return a :class:`VerificationResult` with a list
of named checks rather than raising, so reports can show partial
failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.certificates import qon_certificate_sequence
from repro.core.reductions.clique_to_qon import FNReduction
from repro.core.reductions.sat_to_clique import CliqueReduction
from repro.graphs.clique import is_clique, max_clique_size
from repro.joinopt.cost import total_cost
from repro.joinopt.optimizers import dp_optimal
from repro.sat.gapfamilies import GapFormula
from repro.sat.maxsat import max_satisfiable_clauses


@dataclass
class VerificationResult:
    """Named pass/fail checks for one reduction instance."""

    checks: List[Tuple[str, bool]] = field(default_factory=list)

    def record(self, name: str, ok: bool) -> None:
        self.checks.append((name, bool(ok)))

    @property
    def ok(self) -> bool:
        return all(passed for _, passed in self.checks)

    def failures(self) -> List[str]:
        return [name for name, passed in self.checks if not passed]

    def render(self) -> str:
        lines = []
        for name, passed in self.checks:
            lines.append(f"[{'PASS' if passed else 'FAIL'}] {name}")
        return "\n".join(lines)


def verify_gap_formula(gap: GapFormula, exact_limit: int = 14) -> VerificationResult:
    """Certify a gap formula's promise with the exact MAX-SAT solver.

    ``exact_limit`` caps the variable count for the exponential solver.
    """
    result = VerificationResult()
    result.record(
        "3SAT(13) occurrence bound",
        gap.formula.occurrences_bounded_by(13),
    )
    if gap.satisfiable:
        result.record(
            "witness satisfies the formula",
            gap.witness is not None
            and gap.formula.is_satisfied_by(gap.witness),
        )
    elif gap.formula.num_vars <= exact_limit:
        best, _ = max_satisfiable_clauses(gap.formula)
        promised = gap.formula.num_clauses - gap.theta * gap.formula.num_clauses
        result.record(
            "MAX-SAT within the certified (1-theta) bound",
            best <= promised,
        )
    return result


def verify_clique_reduction(
    reduction: CliqueReduction,
    satisfiable: bool,
    witness_clique: Optional[Sequence[int]] = None,
) -> VerificationResult:
    """Check Lemma 3's promise with the exact clique solver."""
    result = VerificationResult()
    omega = max_clique_size(reduction.graph)
    if satisfiable:
        result.record(
            "omega reaches the YES bound",
            omega >= reduction.clique_if_satisfiable,
        )
        if witness_clique is not None:
            result.record(
                "witness clique is a clique of the right size",
                is_clique(reduction.graph, witness_clique)
                and len(set(witness_clique))
                >= reduction.clique_if_satisfiable,
            )
    else:
        result.record(
            "omega below the NO bound",
            reduction.clique_bound_if_gap is not None
            and omega <= reduction.clique_bound_if_gap,
        )
    return result


def verify_fn_reduction(
    reduction: FNReduction,
    satisfiable: bool,
    witness_clique: Optional[Sequence[int]] = None,
    exact_limit: int = 10,
) -> VerificationResult:
    """Check f_N's promises: certificate vs K on the YES side, the
    Lemma 8 floor (by exact DP, when small enough) on the NO side."""
    result = VerificationResult()
    if satisfiable:
        if witness_clique is None:
            witness_clique = list(range(reduction.k_yes))
        sequence = qon_certificate_sequence(reduction, witness_clique)
        cost = total_cost(reduction.instance, sequence)
        premise = (reduction.k_yes - reduction.k_no) >= 30
        bound = reduction.yes_cost_bound()
        if premise:
            result.record("certificate cost <= K_{c,d}", cost <= bound)
        else:
            # Outside Lemma 6's dn >= 30 premise: alpha^{O(1)} slack.
            slack = reduction.alpha ** 16
            result.record(
                "certificate cost <= K_{c,d} * alpha^{O(1)} "
                "(premise dn >= 30 not met)",
                cost <= bound * slack,
            )
    else:
        result.record(
            "query graph clique within the NO promise",
            max_clique_size(reduction.graph) <= reduction.k_no,
        )
        if reduction.n <= exact_limit:
            optimum = dp_optimal(reduction.instance)
            result.record(
                "exact optimum above the Lemma 8 floor",
                optimum.cost >= reduction.no_cost_lower_bound(),
            )
    return result
