"""The reproduction scorecard: every theorem, one PASS/FAIL line.

``build_scorecard()`` runs a fast, fixed-seed verification of each
result in the paper — the same checks the benchmark harness performs,
sized to finish in seconds — and returns a renderable scorecard.
Exposed on the CLI as ``python -m repro scorecard``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, List, Tuple


@dataclass
class ScorecardEntry:
    claim: str
    passed: bool
    seconds: float
    detail: str = ""


@dataclass
class Scorecard:
    entries: List[ScorecardEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(entry.passed for entry in self.entries)

    def render(self) -> str:
        lines = ["Reproduction scorecard", "=" * 70]
        for entry in self.entries:
            status = "PASS" if entry.passed else "FAIL"
            lines.append(
                f"[{status}] {entry.claim:<52} ({entry.seconds:.1f}s)"
            )
            if entry.detail and not entry.passed:
                lines.append(f"       {entry.detail}")
        lines.append("=" * 70)
        verdict = "all claims reproduced" if self.ok else "FAILURES PRESENT"
        lines.append(f"{len(self.entries)} claims checked: {verdict}")
        return "\n".join(lines)


def _check_theorem2() -> Tuple[bool, str]:
    from repro.core.reductions.sat_to_vc import sat_to_vertex_cover
    from repro.graphs.vertex_cover import min_vertex_cover_size
    from repro.sat.generators import random_planted_3sat, unsatisfiable_core
    from repro.sat.maxsat import max_satisfiable_clauses

    formula, _ = random_planted_3sat(3, 5, rng=1)
    reduction = sat_to_vertex_cover(formula)
    sat_ok = (
        min_vertex_cover_size(reduction.graph)
        == reduction.cover_size_if_satisfiable
    )
    core = unsatisfiable_core()
    core_reduction = sat_to_vertex_cover(core)
    best, _ = max_satisfiable_clauses(core)
    unsat_ok = (
        min_vertex_cover_size(core_reduction.graph)
        == core_reduction.expected_cover_size(best)
        > core_reduction.cover_size_if_satisfiable
    )
    return sat_ok and unsat_ok, "tau identity"


def _check_lemma3() -> Tuple[bool, str]:
    from repro.core.reductions.sat_to_clique import sat_to_clique
    from repro.core.verify import verify_clique_reduction
    from repro.sat.gapfamilies import no_instance, yes_instance

    gap_yes = yes_instance(3, 6, rng=2)
    yes_ok = verify_clique_reduction(
        sat_to_clique(gap_yes),
        True,
        sat_to_clique(gap_yes).clique_from_assignment(gap_yes.witness),
    ).ok
    no_ok = verify_clique_reduction(
        sat_to_clique(no_instance(1)), False
    ).ok
    return yes_ok and no_ok, "clique promises"


def _check_lemma4() -> Tuple[bool, str]:
    from repro.core.reductions.sat_to_two_thirds_clique import (
        sat_to_two_thirds_clique,
    )
    from repro.graphs.clique import max_clique_size
    from repro.sat.gapfamilies import no_instance, yes_instance

    gap_yes = yes_instance(3, 6, rng=3)
    reduction = sat_to_two_thirds_clique(gap_yes)
    yes_ok = max_clique_size(reduction.graph) == reduction.target
    no_reduction = sat_to_two_thirds_clique(no_instance(1))
    no_ok = (
        max_clique_size(no_reduction.graph)
        <= no_reduction.clique_bound_if_gap
    )
    return yes_ok and no_ok, "2n/3 promises"


def _check_theorem9() -> Tuple[bool, str]:
    from repro.core.certificates import qon_certificate_sequence
    from repro.joinopt.cost import total_cost
    from repro.joinopt.optimizers import dp_optimal
    from repro.workloads.gaps import qon_gap_pair

    pair = qon_gap_pair(8, 6, 2, alpha=4)
    certificate = qon_certificate_sequence(pair.yes_reduction, pair.yes_clique)
    yes_cost = total_cost(pair.yes_reduction.instance, certificate)
    no_cost = dp_optimal(pair.no_reduction.instance).cost
    ok = (
        yes_cost <= pair.yes_reduction.yes_cost_bound()
        and no_cost >= pair.no_reduction.no_cost_lower_bound()
        and no_cost > yes_cost
    )
    return ok, "cert <= K < floor <= NO optimum"


def _check_theorem15() -> Tuple[bool, str]:
    from repro.core.certificates import qoh_certificate_plan
    from repro.hashjoin.optimizer import best_decomposition
    from repro.workloads.gaps import qoh_gap_pair

    pair = qoh_gap_pair(6, Fraction(1, 2), alpha=4**6)
    certificate = qoh_certificate_plan(pair.yes_reduction, pair.yes_clique)
    # The hub is pinned: displacing it is infeasible.
    displaced = best_decomposition(
        pair.yes_reduction.instance, (1, 0, 2, 3, 4, 5, 6)
    )
    from repro.utils.lognum import log2_of

    l_log2 = float(pair.yes_reduction.l_bound_log2())
    ok = displaced is None and log2_of(certificate.cost) <= l_log2 + 4
    return ok, "hub pinned; certificate O(L)"


def _check_theorem16() -> Tuple[bool, str]:
    import math

    from repro.core.reductions.sparse import sparse_clique_to_qon
    from repro.graphs.generators import complete_graph

    reduction = sparse_clique_to_qon(
        complete_graph(3), k_yes=3, k_no=1, tau=0.5, alpha=4, rng=4
    )
    m = reduction.m
    ok = (
        reduction.query_graph.num_edges == m + math.ceil(m**0.5)
        and reduction.query_graph.is_connected()
    )
    return ok, "edge budget exact"


def _check_appendix() -> Tuple[bool, str]:
    from repro.core.reductions.partition_to_sppcs import partition_to_sppcs
    from repro.core.reductions.sppcs_to_sqocp import sppcs_to_sqocp
    from repro.starqo.optimizer import decide
    from repro.starqo.partition import PartitionInstance
    from repro.starqo.sppcs import sppcs_decide

    ok = True
    for values, expected in [([10, 10], True), ([10, 6], False)]:
        construction = partition_to_sppcs(PartitionInstance(values))
        if sppcs_decide(construction.instance) != expected:
            ok = False
        reduction = sppcs_to_sqocp(construction.instance)
        if decide(reduction.instance) != expected:
            ok = False
    return ok, "PARTITION <-> SPPCS <-> SQO-CP"


def _check_engine() -> Tuple[bool, str]:
    from fractions import Fraction as F

    from repro.engine import execute_sequence, generate_database
    from repro.engine.data import harmonize_sizes
    from repro.joinopt.cost import intermediate_sizes
    from repro.workloads.queries import random_query

    instance = harmonize_sizes(
        random_query(4, rng=5, size_min=4, size_max=30, domain_min=2, domain_max=5)
    )
    database = generate_database(instance)
    trace = execute_sequence(database, (0, 1, 2, 3))
    predicted = intermediate_sizes(instance, (0, 1, 2, 3))
    ok = database.exact and [
        F(join.output_rows) for join in trace.joins
    ] == predicted
    return ok, "estimates = ground truth"


_CHECKS: List[Tuple[str, Callable[[], Tuple[bool, str]]]] = [
    ("Theorem 2: 3SAT -> VERTEX COVER (tau identity)", _check_theorem2),
    ("Lemma 3: 3SAT -> CLIQUE gap", _check_lemma3),
    ("Lemma 4: 3SAT -> 2/3-CLIQUE gap", _check_lemma4),
    ("Theorem 9: QO_N gap (exact, n=8)", _check_theorem9),
    ("Theorem 15: QO_H reduction mechanics (n=6)", _check_theorem15),
    ("Theorem 16: sparse padding, exact edge budget", _check_theorem16),
    ("Appendix A/B: PARTITION -> SPPCS -> SQO-CP", _check_appendix),
    ("Cost model vs ground-truth execution", _check_engine),
]


def build_scorecard() -> Scorecard:
    """Run every fast verification; returns the scorecard."""
    scorecard = Scorecard()
    for claim, check in _CHECKS:
        start = time.perf_counter()
        try:
            passed, detail = check()
        except Exception as error:  # a crash is a failure, with detail
            passed, detail = False, f"{type(error).__name__}: {error}"
        scorecard.entries.append(
            ScorecardEntry(
                claim=claim,
                passed=passed,
                seconds=time.perf_counter() - start,
                detail=detail,
            )
        )
    return scorecard
