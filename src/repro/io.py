"""JSON serialization for problem instances.

Experiments need to persist and exchange instances whose statistics
are exact rationals with thousands of bits; JSON numbers cannot carry
them, so every numeric is encoded as a string (``"num/den"`` for
rationals, decimal digits for integers).  Round-trips are exact.

Supported: :class:`~repro.joinopt.instance.QONInstance`,
:class:`~repro.hashjoin.instance.QOHInstance`,
:class:`~repro.starqo.instance.SQOCPInstance`, and
:class:`~repro.graphs.graph.Graph`.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, Union

from repro.graphs.graph import Graph
from repro.hashjoin.cost_model import HashJoinCostModel
from repro.hashjoin.instance import QOHInstance
from repro.joinopt.instance import QONInstance
from repro.starqo.instance import SQOCPInstance
from repro.utils.validation import ValidationError, require

PathLike = Union[str, Path]


def _encode_number(value: Union[int, Fraction]) -> str:
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, int):
        return str(value)
    raise ValidationError(
        f"only int/Fraction statistics serialize exactly, got {type(value)!r}"
    )


def _decode_number(text: str) -> Union[int, Fraction]:
    if "/" in text:
        numerator, denominator = text.split("/", 1)
        return Fraction(int(numerator), int(denominator))
    return int(text)


# -- graphs -----------------------------------------------------------
def graph_to_dict(graph: Graph) -> Dict[str, Any]:
    return {
        "type": "graph",
        "num_vertices": graph.num_vertices,
        "edges": sorted([u, v] for u, v in graph.edges),
    }


def graph_from_dict(payload: Dict[str, Any]) -> Graph:
    require(payload.get("type") == "graph", "payload is not a graph")
    return Graph(payload["num_vertices"], payload["edges"])


# -- QO_N -------------------------------------------------------------
def qon_to_dict(instance: QONInstance) -> Dict[str, Any]:
    n = instance.num_relations
    return {
        "type": "qon",
        "graph": graph_to_dict(instance.graph),
        "sizes": [_encode_number(instance.size(r)) for r in range(n)],
        "selectivities": {
            f"{i},{j}": _encode_number(instance.selectivity(i, j))
            for i, j in sorted(instance.graph.edges)
        },
        "access_costs": {
            f"{i},{j}": _encode_number(instance.access_cost(i, j))
            for i, j in sorted(instance.graph.edges)
            for i, j in ((i, j), (j, i))
        },
    }


def qon_from_dict(payload: Dict[str, Any]) -> QONInstance:
    require(payload.get("type") == "qon", "payload is not a QO_N instance")
    graph = graph_from_dict(payload["graph"])
    sizes = [_decode_number(text) for text in payload["sizes"]]
    selectivities = {
        tuple(int(part) for part in key.split(",")): _decode_number(text)
        for key, text in payload["selectivities"].items()
    }
    access_costs = {
        tuple(int(part) for part in key.split(",")): _decode_number(text)
        for key, text in payload["access_costs"].items()
    }
    return QONInstance(graph, sizes, selectivities, access_costs)


# -- QO_H -------------------------------------------------------------
def qoh_to_dict(instance: QOHInstance) -> Dict[str, Any]:
    n = instance.num_relations
    return {
        "type": "qoh",
        "graph": graph_to_dict(instance.graph),
        "sizes": [_encode_number(instance.size(r)) for r in range(n)],
        "selectivities": {
            f"{i},{j}": _encode_number(instance.selectivity(i, j))
            for i, j in sorted(instance.graph.edges)
        },
        "memory": _encode_number(instance.memory),
        "model": {
            "psi": _encode_number(instance.model.psi),
            "g_scale": instance.model.g_scale,
        },
    }


def qoh_from_dict(payload: Dict[str, Any]) -> QOHInstance:
    require(payload.get("type") == "qoh", "payload is not a QO_H instance")
    graph = graph_from_dict(payload["graph"])
    sizes = [_decode_number(text) for text in payload["sizes"]]
    selectivities = {
        tuple(int(part) for part in key.split(",")): _decode_number(text)
        for key, text in payload["selectivities"].items()
    }
    model = HashJoinCostModel(
        psi=Fraction(_decode_number(payload["model"]["psi"])),
        g_scale=payload["model"]["g_scale"],
    )
    return QOHInstance(
        graph,
        sizes,
        selectivities,
        memory=_decode_number(payload["memory"]),
        model=model,
    )


# -- SQO-CP -----------------------------------------------------------
def sqocp_to_dict(instance: SQOCPInstance) -> Dict[str, Any]:
    m = instance.num_satellites
    return {
        "type": "sqocp",
        "num_satellites": m,
        "sort_passes": instance.sort_passes,
        "page_size": instance.page_size,
        "tuples": [_encode_number(instance.tuples(r)) for r in range(m + 1)],
        "pages": [_encode_number(instance.pages(r)) for r in range(m + 1)],
        "sort_costs": [
            _encode_number(instance.sort_cost(r)) for r in range(m + 1)
        ],
        "selectivities": [
            _encode_number(instance.selectivity(i)) for i in range(1, m + 1)
        ],
        "satellite_access": [
            _encode_number(instance.satellite_access_cost(i))
            for i in range(1, m + 1)
        ],
        "center_access": [
            _encode_number(instance.center_access_cost(i))
            for i in range(1, m + 1)
        ],
        "threshold": (
            _encode_number(instance.threshold)
            if instance.threshold is not None
            else None
        ),
    }


def sqocp_from_dict(payload: Dict[str, Any]) -> SQOCPInstance:
    require(payload.get("type") == "sqocp", "payload is not an SQO-CP instance")
    return SQOCPInstance(
        num_satellites=payload["num_satellites"],
        sort_passes=payload["sort_passes"],
        page_size=payload["page_size"],
        tuples=[_decode_number(t) for t in payload["tuples"]],
        pages=[_decode_number(t) for t in payload["pages"]],
        sort_costs=[_decode_number(t) for t in payload["sort_costs"]],
        selectivities=[
            Fraction(_decode_number(t)) for t in payload["selectivities"]
        ],
        satellite_access=[
            _decode_number(t) for t in payload["satellite_access"]
        ],
        center_access=[_decode_number(t) for t in payload["center_access"]],
        threshold=(
            _decode_number(payload["threshold"])
            if payload["threshold"] is not None
            else None
        ),
    )


# -- dispatch ---------------------------------------------------------
_ENCODERS = {
    Graph: graph_to_dict,
    QONInstance: qon_to_dict,
    QOHInstance: qoh_to_dict,
    SQOCPInstance: sqocp_to_dict,
}
_DECODERS = {
    "graph": graph_from_dict,
    "qon": qon_from_dict,
    "qoh": qoh_from_dict,
    "sqocp": sqocp_from_dict,
}


def to_dict(obj: Any) -> Dict[str, Any]:
    """Serialize any supported instance to its plain-dict payload.

    The dict form of :func:`dumps` — the building block the typed
    request layer (:mod:`repro.core.requests`) embeds instances with.
    """
    encoder = _ENCODERS.get(type(obj))
    require(encoder is not None, f"cannot serialize {type(obj)!r}")
    return encoder(obj)


def from_dict(payload: Dict[str, Any]) -> Any:
    """Deserialize a payload produced by :func:`to_dict` (exactly)."""
    require(isinstance(payload, dict), "instance payload must be a dict")
    decoder = _DECODERS.get(payload.get("type"))
    require(decoder is not None, f"unknown payload type {payload.get('type')!r}")
    return decoder(payload)


def dumps(obj: Any) -> str:
    """Serialize any supported instance to JSON text."""
    return json.dumps(to_dict(obj), indent=2, sort_keys=True)


def loads(text: str) -> Any:
    """Deserialize JSON text produced by :func:`dumps`."""
    return from_dict(json.loads(text))


def save(obj: Any, path: PathLike) -> None:
    Path(path).write_text(dumps(obj), encoding="ascii")


def load(path: PathLike) -> Any:
    return loads(Path(path).read_text(encoding="ascii"))
